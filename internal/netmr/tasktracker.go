package netmr

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"hetmr/internal/flow"
	"hetmr/internal/rpcnet"
	"hetmr/internal/spill"
)

// partKey names one map task's partition in a tracker's shuffle store.
type partKey struct {
	mapTask int
	part    int
}

// streamedMapKey is the store slot of a centralized map task's
// streamed output (part -1 can never collide with a real partition).
func streamedMapKey(task int) partKey { return partKey{mapTask: task, part: -1} }

// streamedReduceKey is the store slot of a reduce task's streamed
// output (map task -1 can never collide with a real map task).
func streamedReduceKey(part int) partKey { return partKey{mapTask: -1, part: part} }

// TaskTracker is the TCP worker daemon: it polls the JobTracker with
// heartbeats, pulls block data from DataNodes over the network (the
// paper's measured delivery hop), runs the kernel, and reports results
// — or failures — on the next heartbeat.
//
// Each tracker is also a shuffle server: map tasks run under the
// distributed shuffle leave their hash-partitioned output in the
// tracker's in-memory shuffle store, which reduce tasks on any tracker
// fetch directly over the FetchPartition RPC. The JobTracker never
// sees those bytes.
type TaskTracker struct {
	ID        string
	jtAddr    string
	slots     int
	heartbeat time.Duration
	// LocalDataNode, when set, is the co-located DataNode's address;
	// the JobTracker uses it for data-local assignment, and the
	// tracker counts local vs rack vs remote fetches.
	LocalDataNode string

	// rack is the tracker's rack assignment ("" reads as the flat
	// default rack); it rides every heartbeat for the JobTracker's
	// rack-local grant pass and orders replica fetches.
	rack string

	// srv serves the shuffle store (the data plane); its address
	// travels to the JobTracker in map results.
	srv *rpcnet.Server

	// delay is an injected per-task slowdown (straggler fault
	// injection for tests and benchmarks); immutable after start.
	delay time.Duration

	// device is the node's accelerator (nil on general-purpose nodes);
	// immutable after start. Map tasks whose job asks for the cell
	// mapper offload through it when the kernel has an accelerated
	// variant, and its kind travels on every heartbeat for the
	// JobTracker's device-affinity pass.
	device *AccelDevice

	// store is the tracker's shuffle/data-plane store: map-side
	// partitions and streamed task outputs, spilled to disk above the
	// configured watermark.
	store *shuffleStore
	// Spill configuration, set by options before start.
	spillDir   string
	spillMem   int64
	spillCodec spill.Codec

	// wireCodec is the rpcnet codec name this tracker proposes on its
	// outgoing data-plane connections; immutable after start.
	wireCodec string
	// wire caches pooled connections to DataNodes and peer shuffle
	// stores across tasks.
	wire *connCache

	// fetchWindow sizes the tracker's shuffle-fetch credit window in
	// bytes; fetchWin is the window itself, shared by every reduce
	// attempt on the tracker so outstanding remote partition bytes are
	// bounded tracker-wide (and a fortiori per reducer). Each in-flight
	// FetchPartition chunk holds exactly its MaxBytes of credit.
	fetchWindow int64
	fetchWin    *flow.Window

	mu          sync.Mutex
	completed   []TaskResult
	running     int
	draining    bool // JobTracker-initiated decommission in progress
	localFetch  int64
	rackFetch   int64
	remoteFetch int64
	accelTasks  int64

	stop    chan struct{} // graceful: drain unreported results first
	dead    chan struct{} // simulated node death: abandon everything
	done    chan struct{}
	drained chan struct{} // closed once a decommission drain completes
}

// TrackerOption customizes StartTaskTracker.
type TrackerOption func(*TaskTracker)

// WithTaskDelay makes the tracker sleep d before executing every task
// — the injected-straggler knob the conformance suite uses to prove
// results stay bit-identical when one worker is 10x slower.
func WithTaskDelay(d time.Duration) TrackerOption {
	return func(tt *TaskTracker) { tt.delay = d }
}

// WithAccelerator equips the tracker with a per-node accelerator
// device: cell-mapper map tasks of kernels with an accelerated variant
// offload to it, everything else keeps the host path.
func WithAccelerator(dev *AccelDevice) TrackerOption {
	return func(tt *TaskTracker) { tt.device = dev }
}

// WithShuffleSpill bounds the tracker's shuffle-store memory: stored
// partitions and streamed outputs above memBytes spill to files under
// dir ("" selects the OS temp dir), optionally compressed frame by
// frame by codec. FetchPartition serves spilled payloads
// transparently. A negative memBytes keeps everything in memory (the
// historical behaviour, and the default).
func WithShuffleSpill(dir string, memBytes int64, codec spill.Codec) TrackerOption {
	return func(tt *TaskTracker) {
		tt.spillDir = dir
		tt.spillMem = memBytes
		tt.spillCodec = codec
	}
}

// WithTrackerWireCodec makes the tracker's outgoing data-plane
// connections — DFS block reads and shuffle fetches from peer
// trackers — propose the named rpcnet wire codec (see
// spill.CodecByName).
func WithTrackerWireCodec(name string) TrackerOption {
	return func(tt *TaskTracker) { tt.wireCodec = name }
}

// WithTrackerRack assigns the tracker to a rack (topo.RackName
// naming); the default is the flat topology. The rack rides every
// heartbeat and lets the tracker prefer same-rack replicas when its
// co-located DataNode misses a block.
func WithTrackerRack(rack string) TrackerOption {
	return func(tt *TaskTracker) { tt.rack = rack }
}

// WithTrackerFetchWindow bounds the tracker's outstanding shuffle-fetch
// bytes: reduce tasks pull remote partitions in chunks, and every
// in-flight chunk holds its byte count as credit in a tracker-wide
// window of this size — network receive buffers are bounded the same
// way the spill watermark bounds the stores. Values < 1 keep the
// default (defaultFetchWindow). Clusters typically tie this to the
// spill watermark (Client options do this via WithFetchWindow).
func WithTrackerFetchWindow(bytes int64) TrackerOption {
	return func(tt *TaskTracker) {
		if bytes >= 1 {
			tt.fetchWindow = bytes
		}
	}
}

// DeviceKind reports the tracker's device kind (DeviceCell when an
// accelerator is attached, DeviceHost otherwise).
func (tt *TaskTracker) DeviceKind() string {
	if tt.device != nil {
		return tt.device.Kind()
	}
	return DeviceHost
}

// AccelTasks reports how many task attempts ran on the accelerator —
// the offload proof the heterogeneous tests and benchmarks assert on.
func (tt *TaskTracker) AccelTasks() int64 {
	tt.mu.Lock()
	defer tt.mu.Unlock()
	return tt.accelTasks
}

// FetchStats reports how many block fetches hit the co-located
// DataNode, a DataNode on the tracker's rack, or a remote rack.
func (tt *TaskTracker) FetchStats() (local, rack, remote int64) {
	tt.mu.Lock()
	defer tt.mu.Unlock()
	return tt.localFetch, tt.rackFetch, tt.remoteFetch
}

// Rack returns the tracker's rack assignment ("" for the flat
// default).
func (tt *TaskTracker) Rack() string { return tt.rack }

// Drained returns a channel closed once a JobTracker-initiated
// decommission drain completes: in-flight tasks finished, results
// reported, and every held shuffle/output byte purged. The caller
// (Cluster.DecommissionWorker, or an operator) then stops the tracker.
func (tt *TaskTracker) Drained() <-chan struct{} { return tt.drained }

// ShuffleAddr is the tracker's shuffle-store (data plane) address.
func (tt *TaskTracker) ShuffleAddr() string { return tt.srv.Addr() }

// StartTaskTracker launches a tracker with the given slot count and
// heartbeat interval, polling the JobTracker at jtAddr. localDataNode
// is the co-located DataNode's address ("" when the tracker has none).
func StartTaskTracker(id, jtAddr, localDataNode string, slots int, heartbeat time.Duration, opts ...TrackerOption) (*TaskTracker, error) {
	if slots <= 0 {
		return nil, fmt.Errorf("netmr: tracker %q needs at least one slot", id)
	}
	if heartbeat <= 0 {
		heartbeat = 100 * time.Millisecond
	}
	srv, err := rpcnet.NewServer("127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	tt := &TaskTracker{
		ID:            id,
		jtAddr:        jtAddr,
		slots:         slots,
		heartbeat:     heartbeat,
		LocalDataNode: localDataNode,
		srv:           srv,
		spillMem:      -1,
		fetchWindow:   defaultFetchWindow,
		stop:          make(chan struct{}),
		dead:          make(chan struct{}),
		done:          make(chan struct{}),
		drained:       make(chan struct{}),
	}
	for _, o := range opts {
		o(tt)
	}
	tt.fetchWin = flow.NewWindow(tt.fetchWindow)
	if tt.wireCodec != "" {
		if _, ok := spill.CodecByName(tt.wireCodec); !ok {
			srv.Close()
			return nil, fmt.Errorf("netmr: tracker %q: unknown wire codec %q", id, tt.wireCodec)
		}
	}
	tt.wire = newConnCache(tt.wireCodec)
	tt.store = newShuffleStore(tt.spillDir, tt.spillMem, tt.spillCodec)
	srv.Handle("FetchPartition", tt.handleFetchPartition)
	go tt.loop()
	return tt, nil
}

// Stop halts the tracker gracefully: in-flight tasks finish and any
// completed-but-unreported results are delivered in one final
// heartbeat before the tracker goes away, so a planned decommission
// never forces the JobTracker to re-run finished work. The shuffle
// store closes with the tracker either way — jobs still needing its
// partitions recover through the fetch-failure re-run path, exactly
// as after a death.
func (tt *TaskTracker) Stop() {
	tt.halt(tt.stop)
}

// Kill simulates node death: the heartbeat loop and shuffle server
// stop immediately, in-flight tasks are abandoned unreported, and the
// JobTracker's lease (or a reducer's fetch failure) re-issues the lost
// work elsewhere.
func (tt *TaskTracker) Kill() {
	tt.halt(tt.dead)
}

// halt closes ch once, waits for the loop to exit, and tears down the
// shuffle server. Stop and Kill may race or repeat; all orders are
// safe.
func (tt *TaskTracker) halt(ch chan struct{}) {
	tt.mu.Lock()
	select {
	case <-ch:
	default:
		close(ch)
	}
	tt.mu.Unlock()
	<-tt.done
	tt.srv.Close()
	tt.store.close()
	tt.wire.close()
}

// SpilledBytes reports the cumulative bytes the tracker's shuffle
// store sent to disk — the proof the watermark actually bounded
// memory.
func (tt *TaskTracker) SpilledBytes() int64 { return tt.store.spilledBytes() }

// HeldBytes reports the resident payload bytes the tracker's store
// holds right now, in memory or in spill frames — drops to zero once
// every job's state is purged, which is how tests prove a kill
// actually released a tenant's shuffle/spill footprint.
func (tt *TaskTracker) HeldBytes() int64 { return tt.store.heldBytes() }

// JobHeldBytes reports one job's resident bytes in the tracker's
// store (0 after the job is purged).
func (tt *TaskTracker) JobHeldBytes(jobID int64) int64 { return tt.store.jobBytes(jobID) }

// defaultFetchWindow bounds a tracker's outstanding shuffle-fetch
// bytes when no explicit window is configured.
const defaultFetchWindow = 8 << 20

// fetchChunkBytes is the preferred chunk size of the credit-window
// fetch loop; the window may grant less when it is smaller than one
// chunk.
const fetchChunkBytes = 256 << 10

// FetchWindowLimit reports the tracker's shuffle-fetch credit window
// size in bytes.
func (tt *TaskTracker) FetchWindowLimit() int64 { return tt.fetchWin.Limit() }

// FetchWindowPeak reports the high-water mark of outstanding
// shuffle-fetch bytes — always ≤ FetchWindowLimit, which is the
// flow-control guarantee tests assert.
func (tt *TaskTracker) FetchWindowPeak() int64 { return tt.fetchWin.Peak() }

func (tt *TaskTracker) handleFetchPartition(body []byte) (any, error) {
	var args FetchPartitionArgs
	if err := rpcnet.Unmarshal(body, &args); err != nil {
		return nil, err
	}
	data, size, ok := tt.store.getRange(args.JobID, partKey{args.MapTask, args.Part}, args.Offset, args.MaxBytes)
	if !ok {
		return nil, fmt.Errorf("netmr: tracker %s holds no partition %d of job %d map %d",
			tt.ID, args.Part, args.JobID, args.MapTask)
	}
	return FetchPartitionReply{Data: data, Size: size}, nil
}

// heartbeatCallTimeout bounds one Heartbeat round-trip, so a hung
// JobTracker degrades into per-tick call errors instead of wedging the
// loop (and with it Stop/Kill) forever.
const heartbeatCallTimeout = 5 * time.Second

// dialJobTracker opens a heartbeat connection with the call timeout
// applied, or nil when the JobTracker is unreachable right now. The
// tracker's wire codec rides along: centralized-path heartbeats carry
// task outputs, which compress like any data-plane payload.
func (tt *TaskTracker) dialJobTracker() *rpcnet.Client {
	var opts []rpcnet.Option
	if tt.wireCodec != "" {
		opts = append(opts, rpcnet.WithCodec(tt.wireCodec))
	}
	client, err := rpcnet.Dial(tt.jtAddr, opts...)
	if err != nil {
		return nil
	}
	client.SetCallTimeout(heartbeatCallTimeout)
	return client
}

func (tt *TaskTracker) loop() {
	defer close(tt.done)
	client := tt.dialJobTracker()
	defer func() {
		if client != nil {
			client.Close()
		}
	}()
	ticker := time.NewTicker(tt.heartbeat)
	defer ticker.Stop()
	for {
		select {
		case <-tt.dead:
			return
		case <-tt.stop:
			tt.drain(client)
			return
		case <-ticker.C:
		}
		if client == nil {
			if client = tt.dialJobTracker(); client == nil {
				continue // JobTracker unreachable: retry next tick
			}
		}
		tt.mu.Lock()
		reports := tt.completed
		tt.completed = nil
		free := tt.slots - tt.running
		if tt.draining {
			// A draining tracker takes no new work; it heartbeats on
			// to report results, refresh held-bytes accounting, and
			// learn when its stores may be purged.
			free = 0
		}
		tt.mu.Unlock()
		held, heldBytes := tt.store.held()
		var reply HeartbeatReply
		err := client.Call("Heartbeat", HeartbeatArgs{
			TrackerID:     tt.ID,
			LocalDataNode: tt.LocalDataNode,
			Rack:          tt.rack,
			ShuffleAddr:   tt.srv.Addr(),
			Device:        tt.DeviceKind(),
			FreeSlots:     free,
			Completed:     reports,
			HeldJobs:      held,
			HeldBytes:     heldBytes,
		}, &reply)
		if err != nil {
			// JobTracker gone or the call timed out (the connection
			// may be desynced mid-frame): requeue the unsent reports
			// and redial on the next tick.
			tt.mu.Lock()
			tt.completed = append(reports, tt.completed...)
			tt.mu.Unlock()
			client.Close()
			client = nil
			continue
		}
		for _, id := range reply.PurgeJobs {
			tt.store.purgeJob(id)
		}
		tt.mu.Lock()
		if reply.Drain {
			tt.draining = true
		}
		for range reply.Tasks {
			tt.running++
		}
		idle := tt.draining && tt.running == 0 && len(tt.completed) == 0
		tt.mu.Unlock()
		for _, task := range reply.Tasks {
			go tt.runTask(task)
		}
		heldNow, _ := tt.store.held()
		if idle && len(heldNow) == 0 {
			// Decommission drain complete: nothing running, nothing
			// unreported, no shuffle/output state left to serve. The
			// loop exits; the decommissioner observes Drained and
			// stops the tracker.
			tt.mu.Lock()
			select {
			case <-tt.drained:
			default:
				close(tt.drained)
			}
			tt.mu.Unlock()
			return
		}
	}
}

// drainTimeout caps how long a graceful Stop waits for in-flight tasks
// before giving up on the final report.
const drainTimeout = 5 * time.Second

// drain waits for in-flight tasks to finish and delivers every
// completed-but-unreported result in one final heartbeat (FreeSlots 0,
// so no new work comes back) — the graceful half of Stop. client may
// be nil (the loop lost its connection); delivery redials once.
func (tt *TaskTracker) drain(client *rpcnet.Client) {
	deadline := time.Now().Add(drainTimeout)
	for {
		tt.mu.Lock()
		running := tt.running
		reports := tt.completed
		if running == 0 || time.Now().After(deadline) {
			tt.completed = nil
			tt.mu.Unlock()
			if len(reports) > 0 {
				if client == nil {
					if client = tt.dialJobTracker(); client == nil {
						return
					}
					defer client.Close()
				}
				// Best effort: the JobTracker may already be gone.
				client.Call("Heartbeat", HeartbeatArgs{
					TrackerID:     tt.ID,
					LocalDataNode: tt.LocalDataNode,
					Rack:          tt.rack,
					ShuffleAddr:   tt.srv.Addr(),
					Device:        tt.DeviceKind(),
					Completed:     reports,
				}, nil)
			}
			return
		}
		tt.mu.Unlock()
		select {
		case <-tt.dead:
			return
		case <-time.After(5 * time.Millisecond):
		}
	}
}

// report queues one task result (or failure) for the next heartbeat,
// unless the node has died.
func (tt *TaskTracker) report(res TaskResult) {
	select {
	case <-tt.dead:
		return // node died before reporting
	default:
	}
	tt.mu.Lock()
	tt.completed = append(tt.completed, res)
	tt.mu.Unlock()
}

// runTask executes one task attempt: fetch its inputs (a DFS block for
// map tasks, shuffle partitions for reduce tasks), run the kernel, and
// queue the result — or the error, so the JobTracker re-issues the
// task on the next heartbeat instead of waiting out the lease.
func (tt *TaskTracker) runTask(task Task) {
	defer func() {
		tt.mu.Lock()
		tt.running--
		tt.mu.Unlock()
	}()
	res := TaskResult{JobID: task.JobID, TaskID: task.TaskID, Reduce: task.Reduce}
	kern, err := lookupKernel(task.Kernel)
	if err != nil {
		res.Err = err.Error()
		tt.report(res)
		return
	}
	if tt.delay > 0 {
		time.Sleep(tt.delay) // injected straggler slowdown
	}
	if task.Reduce {
		tt.runReduce(task, kern, res)
		return
	}
	var data []byte
	if task.Block.Addr != "" {
		data, err = tt.fetchBlock(task.Block)
		if err != nil {
			res.Err = err.Error()
			tt.report(res)
			return
		}
	}
	if task.NumParts > 0 && kern.Partition != nil {
		// Distributed shuffle: the partitions stay here, served over
		// FetchPartition; only their location crosses the heartbeat.
		parts, err := tt.partitionTask(task, kern, data)
		if err != nil {
			res.Err = err.Error()
			tt.report(res)
			return
		}
		res.PartBytes = make([]int64, len(parts))
		for p, payload := range parts {
			if err := tt.store.put(task.JobID, partKey{task.TaskID, p}, payload); err != nil {
				res.Err = err.Error()
				tt.report(res)
				return
			}
			// Per-partition sizes ride the heartbeat so the JobTracker
			// can grant the heaviest reduce ranges first (LPT).
			res.PartBytes[p] = int64(len(payload))
		}
		res.ShuffleAddr = tt.srv.Addr()
		tt.report(res)
		return
	}
	out, err := tt.mapTask(task, kern, data)
	if err != nil {
		res.Err = err.Error()
		tt.report(res)
		return
	}
	if task.StreamOutput {
		// Streamed result path: the output parks here (spilling past
		// the watermark) and only its location rides the heartbeat;
		// the client fetches it straight from this store. Kernels with
		// a RawOutput hook park the unwrapped result bytes, so the
		// client can stream them in bounded chunks with no decode.
		if kern.RawOutput != nil {
			if out, err = kern.RawOutput(out); err != nil {
				res.Err = err.Error()
				tt.report(res)
				return
			}
		}
		if err := tt.store.put(task.JobID, streamedMapKey(task.TaskID), out); err != nil {
			res.Err = err.Error()
			tt.report(res)
			return
		}
		res.ShuffleAddr = tt.srv.Addr()
		tt.report(res)
		return
	}
	res.Output = out
	tt.report(res)
}

// offloads reports whether the task's map work should try the
// accelerator: the node has a device and the job asked for the cell
// mapper (an empty Mapper predates the variant and means the default,
// cell).
func (tt *TaskTracker) offloads(task Task) bool {
	return tt.device != nil && !task.Reduce &&
		(task.Mapper == "" || task.Mapper == MapperCell)
}

// noteAccel counts one completed offload.
func (tt *TaskTracker) noteAccel() {
	tt.mu.Lock()
	tt.accelTasks++
	tt.mu.Unlock()
}

// mapTask runs one map task's kernel, trying the accelerated variant
// first when the task, the node and the kernel all support it. A
// declined offload (errAccelFallback) re-runs on the host path — the
// variants are bit-identical, so the fallback is invisible to the job.
func (tt *TaskTracker) mapTask(task Task, kern MapKernel, data []byte) ([]byte, error) {
	if tt.offloads(task) && kern.AccelMap != nil {
		out, err := kern.AccelMap(tt.device, task, data)
		if err == nil {
			tt.noteAccel()
			return out, nil
		}
		if !errors.Is(err, errAccelFallback) {
			return nil, err
		}
	}
	return kern.Map(task, data)
}

// partitionTask is mapTask for the distributed-shuffle path.
func (tt *TaskTracker) partitionTask(task Task, kern MapKernel, data []byte) ([][]byte, error) {
	if tt.offloads(task) && kern.AccelPartition != nil {
		parts, err := kern.AccelPartition(tt.device, task, data, task.NumParts)
		if err == nil {
			tt.noteAccel()
			return parts, nil
		}
		if !errors.Is(err, errAccelFallback) {
			return nil, err
		}
	}
	return kern.Partition(task, data, task.NumParts)
}

// fetchParallel caps a reduce task's concurrent remote partition
// fetches; the credit window bounds the bytes, this bounds the
// connections.
const fetchParallel = 4

// runReduce executes one reduce task: pull partition task.TaskID from
// every mapper tracker's shuffle store (local reads short-circuit the
// network) and merge the pieces with the kernel. Remote pieces arrive
// over up to fetchParallel concurrent chunked fetch loops, every
// in-flight chunk holding its byte credit in the tracker's fetch
// window — outstanding shuffle bytes are bounded by the window, not by
// partition sizes. A fetch failure names the unreachable store so the
// JobTracker can re-run the map tasks that died with it.
func (tt *TaskTracker) runReduce(task Task, kern MapKernel, res TaskResult) {
	own := tt.srv.Addr()
	pieces := make([][]byte, len(task.Inputs))
	type remote struct {
		i   int
		ref MapOutputRef
	}
	var remotes []remote
	for i, ref := range task.Inputs {
		if ref.Addr == own {
			data, ok := tt.store.get(task.JobID, partKey{ref.MapTask, task.TaskID})
			if !ok {
				res.Err = fmt.Sprintf("netmr: local partition %d of job %d map %d missing",
					task.TaskID, task.JobID, ref.MapTask)
				res.BadAddr = own
				tt.report(res)
				return
			}
			pieces[i] = data
			continue
		}
		remotes = append(remotes, remote{i, ref})
	}
	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		fetchErr error
		badAddr  string
	)
	sem := make(chan struct{}, fetchParallel)
	for _, rm := range remotes {
		wg.Add(1)
		go func(rm remote) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			mu.Lock()
			abort := fetchErr != nil
			mu.Unlock()
			if abort {
				return
			}
			data, err := tt.fetchPartition(rm.ref.Addr, FetchPartitionArgs{
				JobID: task.JobID, MapTask: rm.ref.MapTask, Part: task.TaskID,
			})
			if err != nil {
				mu.Lock()
				if fetchErr == nil {
					fetchErr, badAddr = err, rm.ref.Addr
				}
				mu.Unlock()
				return
			}
			pieces[rm.i] = data
		}(rm)
	}
	wg.Wait()
	if fetchErr != nil {
		res.Err = fetchErr.Error()
		res.BadAddr = badAddr
		tt.report(res)
		return
	}
	out, err := kern.Merge(pieces)
	if err != nil {
		res.Err = err.Error()
		tt.report(res)
		return
	}
	if task.StreamOutput {
		// The merged partition stays here too; the client pulls it in
		// partition order once the job finishes — raw when the kernel
		// has a RawOutput hook, so the pull can be chunked.
		if kern.RawOutput != nil {
			if out, err = kern.RawOutput(out); err != nil {
				res.Err = err.Error()
				tt.report(res)
				return
			}
		}
		if err := tt.store.put(task.JobID, streamedReduceKey(task.TaskID), out); err != nil {
			res.Err = err.Error()
			tt.report(res)
			return
		}
		res.ShuffleAddr = own
		tt.report(res)
		return
	}
	res.Output = out
	tt.report(res)
}

// fetchPartition pulls one whole partition from a peer shuffle store
// in fetchChunkBytes-sized pieces, holding each in-flight chunk's byte
// count as credit in the tracker's fetch window — the credit-based
// flow control of the shuffle plane. The window may grant less than a
// full chunk (it never grants more than its limit), in which case the
// loop simply takes more, smaller rounds.
func (tt *TaskTracker) fetchPartition(addr string, args FetchPartitionArgs) ([]byte, error) {
	c, err := tt.wire.get(addr)
	if err != nil {
		return nil, err
	}
	var out []byte
	for off := int64(0); ; {
		credit := tt.fetchWin.Acquire(fetchChunkBytes)
		args.Offset = off
		args.MaxBytes = credit
		var rep FetchPartitionReply
		err := c.CallTimeout("FetchPartition", args, &rep, dataCallTimeout)
		tt.fetchWin.Release(credit)
		if err != nil {
			return nil, err
		}
		if out == nil {
			out = make([]byte, 0, rep.Size)
		}
		out = append(out, rep.Data...)
		off += int64(len(rep.Data))
		if off >= rep.Size || len(rep.Data) == 0 {
			return out, nil
		}
	}
}

// fetchBlock pulls one DFS block through the shared read-failover
// protocol (readBlockFrom), trying replicas in topology order — the
// co-located DataNode first, then same-rack replicas, then the rest in
// placement order — what keeps map tasks running through a DataNode
// death while preferring the cheapest surviving copy.
func (tt *TaskTracker) fetchBlock(blk BlockInfo) ([]byte, error) {
	addrs := blk.ReplicaAddrs()
	rackOf := make(map[string]string, len(addrs))
	for i, addr := range addrs {
		rackOf[addr] = blk.RackOfReplica(i)
	}
	sameRack := func(addr string) bool {
		return tt.rack != "" && rackOf[addr] == tt.rack
	}
	ordered := make([]string, 0, len(addrs))
	for _, addr := range addrs {
		if addr == tt.LocalDataNode {
			ordered = append(ordered, addr)
		}
	}
	for _, addr := range addrs {
		if addr != tt.LocalDataNode && sameRack(addr) {
			ordered = append(ordered, addr)
		}
	}
	for _, addr := range addrs {
		if addr != tt.LocalDataNode && !sameRack(addr) {
			ordered = append(ordered, addr)
		}
	}
	data, served, err := readBlockFrom(tt.wire, blk, ordered)
	if err != nil {
		return nil, err
	}
	tt.mu.Lock()
	switch {
	case served == tt.LocalDataNode:
		tt.localFetch++
	case sameRack(served):
		tt.rackFetch++
	default:
		tt.remoteFetch++
	}
	tt.mu.Unlock()
	return data, nil
}
