package netmr

import (
	"fmt"
	"strconv"
	"sync"
	"time"

	"hetmr/internal/rpcnet"
	"hetmr/internal/spill"
)

// DataNode is a TCP block server: it stores block replicas and serves
// them to TaskTrackers — the hop the paper's RecordReader measurement
// is about. Blocks live in a spill store: all in memory by default,
// bounded by a watermark (the rest on disk) when the node is started
// WithBlockSpill — the path that lets a cluster hold datasets larger
// than its RAM.
//
// Membership is dynamic: the node joins the NameNode over its first
// Register heartbeat and repeats the beat on a timer, so the NameNode
// holds an authoritative liveness view and can re-replicate the node's
// blocks when it goes silent. The Replicate RPC is the repair path's
// data mover: the NameNode plans a copy, this node pushes the block
// straight to the target peer.
type DataNode struct {
	srv   *rpcnet.Server
	store *spill.Store

	nnAddr    string
	rack      string
	heartbeat time.Duration

	spillDir   string
	spillMem   int64
	spillCodec spill.Codec

	mu   sync.Mutex
	stop chan struct{}
	done chan struct{}
}

// DataNodeOption customizes StartDataNode.
type DataNodeOption func(*DataNode)

// WithBlockSpill bounds the DataNode's resident block memory: blocks
// above memBytes spill to files under dir ("" selects the OS temp
// dir), through codec when non-nil. Negative memBytes keeps every
// block in memory (the default).
func WithBlockSpill(dir string, memBytes int64, codec spill.Codec) DataNodeOption {
	return func(dn *DataNode) {
		dn.spillDir = dir
		dn.spillMem = memBytes
		dn.spillCodec = codec
	}
}

// WithDataNodeRack assigns the node to a rack (topo.RackName naming);
// the default is the flat topo.DefaultRack. The rack rides every
// Register heartbeat, feeding the NameNode's rack-aware placement.
func WithDataNodeRack(rack string) DataNodeOption {
	return func(dn *DataNode) { dn.rack = rack }
}

// WithDataNodeHeartbeat sets the liveness-beat interval (default
// 100ms). Keep it well under the NameNode's DeadAfter.
func WithDataNodeHeartbeat(d time.Duration) DataNodeOption {
	return func(dn *DataNode) { dn.heartbeat = d }
}

// StartDataNode launches a DataNode on addr and registers it with the
// NameNode over its first heartbeat; the beat then repeats until Close.
func StartDataNode(addr, nameNodeAddr string, opts ...DataNodeOption) (*DataNode, error) {
	srv, err := rpcnet.NewServer(addr)
	if err != nil {
		return nil, err
	}
	dn := &DataNode{
		srv:       srv,
		nnAddr:    nameNodeAddr,
		heartbeat: 100 * time.Millisecond,
		spillMem:  spill.NoSpill,
		stop:      make(chan struct{}),
		done:      make(chan struct{}),
	}
	for _, o := range opts {
		o(dn)
	}
	dn.store = spill.NewStore(dn.spillDir, dn.spillMem, dn.spillCodec)
	srv.Handle("Put", dn.handlePut)
	srv.Handle("Get", dn.handleGet)
	srv.Handle("Replicate", dn.handleReplicate)
	// First beat synchronously: callers may allocate right after
	// StartDataNode returns, so the node must already be a member.
	if err := dn.beat(); err != nil {
		srv.Close()
		dn.store.Close()
		return nil, err
	}
	go dn.loop()
	return dn, nil
}

// beat sends one Register heartbeat.
func (dn *DataNode) beat() error {
	nnc, err := rpcnet.Dial(dn.nnAddr)
	if err != nil {
		return err
	}
	defer nnc.Close()
	return nnc.Call("Register", RegisterArgs{Addr: dn.srv.Addr(), Rack: dn.rack}, nil)
}

// loop repeats the liveness beat until the node closes. A missed beat
// (NameNode briefly unreachable) just retries next tick.
func (dn *DataNode) loop() {
	defer close(dn.done)
	ticker := time.NewTicker(dn.heartbeat)
	defer ticker.Stop()
	for {
		select {
		case <-dn.stop:
			return
		case <-ticker.C:
			dn.beat()
		}
	}
}

// Addr returns the DataNode's RPC address.
func (dn *DataNode) Addr() string { return dn.srv.Addr() }

// Rack returns the node's rack assignment ("" for the flat default).
func (dn *DataNode) Rack() string { return dn.rack }

// Close stops the heartbeat loop and the server, and releases any
// spill files. Idempotent.
func (dn *DataNode) Close() error {
	dn.mu.Lock()
	select {
	case <-dn.stop:
	default:
		close(dn.stop)
	}
	dn.mu.Unlock()
	<-dn.done
	err := dn.srv.Close()
	if serr := dn.store.Close(); err == nil {
		err = serr
	}
	return err
}

// BlockCount reports stored replicas (for tests).
func (dn *DataNode) BlockCount() int { return dn.store.Len() }

// SpilledBytes reports the cumulative block bytes this node sent to
// disk.
func (dn *DataNode) SpilledBytes() int64 { return dn.store.SpilledBytes() }

func dnBlockKey(id int64) string { return strconv.FormatInt(id, 10) }

func (dn *DataNode) handlePut(body []byte) (any, error) {
	var args PutArgs
	if err := rpcnet.Unmarshal(body, &args); err != nil {
		return nil, err
	}
	if err := dn.store.Put(dnBlockKey(args.ID), args.Data); err != nil {
		return nil, err
	}
	return PutReply{}, nil
}

func (dn *DataNode) handleGet(body []byte) (any, error) {
	var args GetArgs
	if err := rpcnet.Unmarshal(body, &args); err != nil {
		return nil, err
	}
	data, err := dn.store.Get(dnBlockKey(args.ID))
	if err != nil {
		return nil, fmt.Errorf("netmr: block %d not on this datanode", args.ID)
	}
	return GetReply{Data: data}, nil
}

// handleReplicate pushes one locally stored block to a peer DataNode —
// the NameNode-planned re-replication transfer. The payload flows
// DataNode→DataNode; the NameNode only ever sees the acknowledgement.
func (dn *DataNode) handleReplicate(body []byte) (any, error) {
	var args ReplicateArgs
	if err := rpcnet.Unmarshal(body, &args); err != nil {
		return nil, err
	}
	data, err := dn.store.Get(dnBlockKey(args.ID))
	if err != nil {
		return nil, fmt.Errorf("netmr: block %d not on this datanode", args.ID)
	}
	peer, err := rpcnet.Dial(args.Target)
	if err != nil {
		return nil, fmt.Errorf("netmr: replicate block %d: %w", args.ID, err)
	}
	defer peer.Close()
	if err := peer.CallTimeout("Put", PutArgs{ID: args.ID, Data: data}, nil, dataCallTimeout); err != nil {
		return nil, fmt.Errorf("netmr: replicate block %d to %s: %w", args.ID, args.Target, err)
	}
	return ReplicateReply{}, nil
}
