package netmr

import (
	"fmt"
	"sync"

	"hetmr/internal/rpcnet"
)

// DataNode is a TCP block server: it stores block replicas in memory
// and serves them to TaskTrackers — the hop the paper's RecordReader
// measurement is about.
type DataNode struct {
	srv *rpcnet.Server

	mu     sync.Mutex
	blocks map[int64][]byte
}

// StartDataNode launches a DataNode on addr and registers it with the
// NameNode.
func StartDataNode(addr, nameNodeAddr string) (*DataNode, error) {
	srv, err := rpcnet.NewServer(addr)
	if err != nil {
		return nil, err
	}
	dn := &DataNode{srv: srv, blocks: make(map[int64][]byte)}
	srv.Handle("Put", dn.handlePut)
	srv.Handle("Get", dn.handleGet)
	nnc, err := rpcnet.Dial(nameNodeAddr)
	if err != nil {
		srv.Close()
		return nil, err
	}
	defer nnc.Close()
	if err := nnc.Call("Register", RegisterArgs{Addr: srv.Addr()}, nil); err != nil {
		srv.Close()
		return nil, err
	}
	return dn, nil
}

// Addr returns the DataNode's RPC address.
func (dn *DataNode) Addr() string { return dn.srv.Addr() }

// Close stops the server.
func (dn *DataNode) Close() error { return dn.srv.Close() }

// BlockCount reports stored replicas (for tests).
func (dn *DataNode) BlockCount() int {
	dn.mu.Lock()
	defer dn.mu.Unlock()
	return len(dn.blocks)
}

func (dn *DataNode) handlePut(body []byte) (any, error) {
	var args PutArgs
	if err := rpcnet.Unmarshal(body, &args); err != nil {
		return nil, err
	}
	dn.mu.Lock()
	defer dn.mu.Unlock()
	dn.blocks[args.ID] = append([]byte(nil), args.Data...)
	return PutReply{}, nil
}

func (dn *DataNode) handleGet(body []byte) (any, error) {
	var args GetArgs
	if err := rpcnet.Unmarshal(body, &args); err != nil {
		return nil, err
	}
	dn.mu.Lock()
	data, ok := dn.blocks[args.ID]
	dn.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("netmr: block %d not on this datanode", args.ID)
	}
	return GetReply{Data: data}, nil
}
