package netmr

import (
	"fmt"
	"strconv"

	"hetmr/internal/rpcnet"
	"hetmr/internal/spill"
)

// DataNode is a TCP block server: it stores block replicas and serves
// them to TaskTrackers — the hop the paper's RecordReader measurement
// is about. Blocks live in a spill store: all in memory by default,
// bounded by a watermark (the rest on disk) when the node is started
// WithBlockSpill — the path that lets a cluster hold datasets larger
// than its RAM.
type DataNode struct {
	srv   *rpcnet.Server
	store *spill.Store

	spillDir   string
	spillMem   int64
	spillCodec spill.Codec
}

// DataNodeOption customizes StartDataNode.
type DataNodeOption func(*DataNode)

// WithBlockSpill bounds the DataNode's resident block memory: blocks
// above memBytes spill to files under dir ("" selects the OS temp
// dir), through codec when non-nil. Negative memBytes keeps every
// block in memory (the default).
func WithBlockSpill(dir string, memBytes int64, codec spill.Codec) DataNodeOption {
	return func(dn *DataNode) {
		dn.spillDir = dir
		dn.spillMem = memBytes
		dn.spillCodec = codec
	}
}

// StartDataNode launches a DataNode on addr and registers it with the
// NameNode.
func StartDataNode(addr, nameNodeAddr string, opts ...DataNodeOption) (*DataNode, error) {
	srv, err := rpcnet.NewServer(addr)
	if err != nil {
		return nil, err
	}
	dn := &DataNode{srv: srv, spillMem: spill.NoSpill}
	for _, o := range opts {
		o(dn)
	}
	dn.store = spill.NewStore(dn.spillDir, dn.spillMem, dn.spillCodec)
	srv.Handle("Put", dn.handlePut)
	srv.Handle("Get", dn.handleGet)
	nnc, err := rpcnet.Dial(nameNodeAddr)
	if err != nil {
		srv.Close()
		dn.store.Close()
		return nil, err
	}
	defer nnc.Close()
	if err := nnc.Call("Register", RegisterArgs{Addr: srv.Addr()}, nil); err != nil {
		srv.Close()
		dn.store.Close()
		return nil, err
	}
	return dn, nil
}

// Addr returns the DataNode's RPC address.
func (dn *DataNode) Addr() string { return dn.srv.Addr() }

// Close stops the server and releases any spill files.
func (dn *DataNode) Close() error {
	err := dn.srv.Close()
	if serr := dn.store.Close(); err == nil {
		err = serr
	}
	return err
}

// BlockCount reports stored replicas (for tests).
func (dn *DataNode) BlockCount() int { return dn.store.Len() }

// SpilledBytes reports the cumulative block bytes this node sent to
// disk.
func (dn *DataNode) SpilledBytes() int64 { return dn.store.SpilledBytes() }

func dnBlockKey(id int64) string { return strconv.FormatInt(id, 10) }

func (dn *DataNode) handlePut(body []byte) (any, error) {
	var args PutArgs
	if err := rpcnet.Unmarshal(body, &args); err != nil {
		return nil, err
	}
	if err := dn.store.Put(dnBlockKey(args.ID), args.Data); err != nil {
		return nil, err
	}
	return PutReply{}, nil
}

func (dn *DataNode) handleGet(body []byte) (any, error) {
	var args GetArgs
	if err := rpcnet.Unmarshal(body, &args); err != nil {
		return nil, err
	}
	data, err := dn.store.Get(dnBlockKey(args.ID))
	if err != nil {
		return nil, fmt.Errorf("netmr: block %d not on this datanode", args.ID)
	}
	return GetReply{Data: data}, nil
}
