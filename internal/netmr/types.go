// Package netmr is the live system over real sockets: a compact
// Hadoop-architecture MapReduce runtime whose daemons — NameNode,
// DataNodes, JobTracker, TaskTrackers — are TCP servers exchanging
// framed gob RPCs (internal/rpcnet), storing real blocks and running
// real kernels. It is the in-process live runner's (internal/core)
// distributed sibling: same roles as the paper's §III prototype, but
// data actually crosses the network stack, including the
// DataNode→TaskTracker hop whose effective bandwidth the paper
// identified as the data-intensive bottleneck.
//
// The data plane is distributed, mirroring the paper's Hadoop
// architecture: map outputs never travel through the JobTracker.
// Mappers hash-partition their output into a per-tracker shuffle store
// served over rpcnet, reducers pull partitions directly from the
// mapper trackers and merge them, and heartbeats carry only metadata —
// partition locations, task failures and the final (small) reduce
// outputs.
//
// The JobTracker is a long-running multi-tenant job service, not a
// one-job driver: Submit/Status/Wait/Kill/ListJobs RPCs manage many
// concurrent jobs, each with its own task boards and job-id-prefixed
// shuffle namespace. Tenants carry quotas (Quota: fair-share weight,
// job/tracker caps, a held-spill-bytes budget) enforced at admission
// with the typed ErrQuotaExceeded, and free heartbeat slots are
// granted across tenants by weighted deficit round-robin
// (internal/sched's FairShare). Service wraps a cluster for service
// lifetimes; TenantClient binds a Client to one tenant.
package netmr

// BlockInfo describes one stored block: its cluster-wide ID, size, the
// primary DataNode serving it, and every replica holding it.
type BlockInfo struct {
	ID   int64
	Size int64
	Addr string // primary DataNode RPC address
	// Replicas lists every DataNode holding the block, primary first.
	// Readers fail over along this list when a DataNode is down.
	Replicas []string
	// Racks lists each replica's rack, parallel to Replicas, so
	// schedulers and readers can grade locality (node, rack, remote)
	// without a separate topology exchange. Records written before
	// racks existed leave it empty — every replica then reads as
	// rack-local, the flat pre-rack behaviour.
	Racks []string
}

// RackOfReplica reports the rack of the i'th replica (topo.DefaultRack
// for records predating rack placement).
func (b BlockInfo) RackOfReplica(i int) string {
	if i >= 0 && i < len(b.Racks) {
		return b.Racks[i]
	}
	return ""
}

// OnRack reports whether any replica of the block lives on rack.
// Blocks without rack records match any rack — the flat topology.
func (b BlockInfo) OnRack(rack string) bool {
	if len(b.Racks) == 0 {
		return true
	}
	for _, r := range b.Racks {
		if r == rack {
			return true
		}
	}
	return false
}

// ReplicaAddrs returns every DataNode holding the block, primary
// first, tolerating records written before replication existed.
func (b BlockInfo) ReplicaAddrs() []string {
	if len(b.Replicas) > 0 {
		return b.Replicas
	}
	if b.Addr != "" {
		return []string{b.Addr}
	}
	return nil
}

// --- NameNode RPC messages ---

// RegisterArgs announces a DataNode. It doubles as the DataNode's
// periodic liveness heartbeat: registration is idempotent, the first
// beat registers the node (dynamic membership — nothing is wired at
// boot) and every later one refreshes the NameNode's liveness view. A
// node re-registering after being declared dead rejoins cleanly.
type RegisterArgs struct {
	Addr string
	// Rack is the node's rack assignment ("" lands in the default
	// rack — the flat topology).
	Rack string
}

// RegisterReply acknowledges registration. Draining tells the node the
// NameNode is decommissioning it: it keeps serving reads but should
// expect removal once its blocks are re-replicated.
type RegisterReply struct {
	Draining bool
}

// ReplicateArgs asks a DataNode to push one of its stored blocks to a
// peer — the NameNode-driven re-replication transfer: the NameNode
// plans the copy and the source node moves the bytes directly, so
// block payloads never cross the metadata master.
type ReplicateArgs struct {
	ID     int64
	Target string // destination DataNode RPC address
}

// ReplicateReply acknowledges the transfer.
type ReplicateReply struct{}

// DecommissionDNArgs asks the NameNode to gracefully retire a
// DataNode: its blocks are re-replicated onto the surviving nodes
// first (restoring the replication target without it), then the node
// is dropped from every replica list and from placement.
type DecommissionDNArgs struct {
	Addr string
}

// DecommissionDNReply acknowledges the decommission.
type DecommissionDNReply struct{}

// DataNodeInfo is one DataNode's row in a ListDataNodes reply.
type DataNodeInfo struct {
	Addr string
	Rack string
	// State is the node's lifecycle state: "alive", "draining" or
	// "dead".
	State string
	// Blocks counts block replicas placed on the node.
	Blocks int
}

// ListDataNodesArgs asks for the NameNode's membership view.
type ListDataNodesArgs struct{}

// ListDataNodesReply lists every known DataNode in registration order.
type ListDataNodesReply struct {
	Nodes []DataNodeInfo
}

// AllocateArgs asks for a placement of one new block of a file.
type AllocateArgs struct {
	File      string
	Size      int64
	Preferred string // DataNode address to favour (writer locality)
}

// AllocateReply returns the new block's identity and homes.
type AllocateReply struct {
	Block BlockInfo
}

// ConfirmArgs prunes a just-written block's replica list to the
// DataNodes that actually stored it — the write-path failover: a dead
// replica target costs the block a copy, never the write.
type ConfirmArgs struct {
	File     string
	BlockID  int64
	Replicas []string
}

// ConfirmReply acknowledges the pruning.
type ConfirmReply struct{}

// LookupArgs names a file.
type LookupArgs struct {
	File string
}

// LookupReply lists the file's blocks in order.
type LookupReply struct {
	Blocks []BlockInfo
}

// ListArgs requests the namespace listing.
type ListArgs struct{}

// ListReply returns sorted file names.
type ListReply struct {
	Files []string
}

// DeleteArgs names a file to remove.
type DeleteArgs struct {
	File string
}

// DeleteReply acknowledges deletion.
type DeleteReply struct{}

// --- DataNode RPC messages ---

// PutArgs stores a block replica.
type PutArgs struct {
	ID   int64
	Data []byte
}

// PutReply acknowledges storage.
type PutReply struct{}

// GetArgs fetches a block.
type GetArgs struct {
	ID int64
}

// GetReply carries the block data.
type GetReply struct {
	Data []byte
}

// --- TaskTracker shuffle-store RPC messages ---

// FetchPartitionArgs asks a TaskTracker's shuffle store for one map
// task's partition — the reduce-side pull of the distributed shuffle.
// Offset/MaxBytes select a chunk of the payload for the credit-window
// fetch path; the zero values (0, 0) fetch the whole payload, so
// pre-windowing callers keep working unchanged.
type FetchPartitionArgs struct {
	JobID   int64
	MapTask int
	Part    int
	// Offset is the byte offset into the stored payload to read from.
	Offset int64
	// MaxBytes caps the reply's Data length; <= 0 means "the rest".
	// Each in-flight fetch holds MaxBytes of credit in the reducer's
	// flow window, so outstanding shuffle bytes stay provably bounded.
	MaxBytes int64
}

// FetchPartitionReply carries the partition payload (or a chunk of it)
// and the payload's total size, so chunked readers know when they have
// the whole thing.
type FetchPartitionReply struct {
	Data []byte
	// Size is the stored payload's total size in bytes, regardless of
	// how much of it this reply carries.
	Size int64
}

// --- JobTracker RPC messages ---

// DefaultTenant is the tenant a job with an empty JobSpec.Tenant is
// accounted to.
const DefaultTenant = "default"

// Quota is one tenant's admission-control and fair-share contract at
// the JobTracker. The zero value is unlimited with weight 1, so
// unconfigured tenants behave exactly as jobs did before tenancy
// existed.
type Quota struct {
	// Weight is the tenant's fair-share weight: over any contended
	// stretch the tenant receives task grants in proportion to it
	// (weight 2 gets twice the fleet of weight 1). 0 selects 1.
	Weight float64
	// MaxJobs caps the tenant's concurrently running (unfinished)
	// jobs; the excess submission is rejected with ErrQuotaExceeded.
	// 0 is unlimited.
	MaxJobs int
	// MaxTrackers caps how many distinct TaskTrackers may hold the
	// tenant's in-flight task attempts at once — the "max trackers
	// granted" share of the fleet. 0 is unlimited.
	MaxTrackers int
	// SpillBytes caps the tenant's resident data-plane footprint:
	// the shuffle partitions, spill frames and streamed outputs its
	// jobs hold across every tracker store (as reported by heartbeat
	// accounting). A submission while the tenant is over budget is
	// rejected with ErrQuotaExceeded. 0 is unlimited.
	SpillBytes int64
	// MaxQueued lets submissions that would exceed MaxJobs or
	// SpillBytes wait in a per-tenant admission queue of this depth
	// instead of failing: queued jobs hold a job ID but no cluster
	// resources, and promote to active in submission order as quota
	// frees up. ErrQuotaExceeded then fires only when the queue is
	// also full. 0 keeps the historical immediate rejection.
	MaxQueued int
}

// JobInfo is one job's row in a ListJobs reply.
type JobInfo struct {
	ID     int64
	Tenant string
	Name   string
	Kernel string
	// Done and Err mirror StatusReply: Err is the terminal error of a
	// failed or killed job, and Done is true whenever Err is set.
	Done bool
	Err  string
	// Completed counts finished tasks across both phases; Total is
	// map tasks plus reduce tasks.
	Completed int
	Total     int
}

// JobSpec describes a job: either a data job over Input (one map task
// per block) or a compute job of NumTasks tasks sharing Samples.
type JobSpec struct {
	Name string
	// Tenant is the submitting tenant for fair-share scheduling,
	// quota accounting and ListJobs filtering ("" means
	// DefaultTenant).
	Tenant  string
	Kernel  string // registry name
	Args    []byte // kernel-specific, gob-encoded
	Input   string // DFS input file ("" for compute jobs)
	Samples int64  // compute jobs: total samples
	// NumTasks for compute jobs (values < 1 run as a single task).
	NumTasks int
	// Seed is the base RNG seed for compute jobs; task i draws from
	// the domain MixSeed(Seed, i). 0 selects the default seed (2009,
	// the paper's year).
	Seed uint64
	// NumReducers turns the distributed shuffle/reduce plane on for
	// data jobs whose kernel supports partitioned output: map outputs
	// are hash-partitioned into this many reduce tasks, each scheduled
	// like a map task and fetched directly from the mapper trackers.
	// 0 keeps the centralized reduce at the JobTracker; negative is
	// rejected at submission (the partition hash cannot route into a
	// non-positive partition count).
	NumReducers int
	// Mapper selects the map-task variant: MapperCell (the default,
	// offload to the tracker's accelerator where one exists, host
	// fallback elsewhere — bit-identical either way) or MapperJava
	// (host path everywhere).
	Mapper string
	// StreamOutput keeps task output bytes on the worker trackers
	// instead of shipping them to the JobTracker: each final-phase
	// task (map task on the centralized path, reduce task on the
	// shuffle path) parks its output in its tracker's shuffle store
	// and reports only the location. StatusReply.Outputs lists the
	// stored pieces in task order once the job is done; the client
	// streams them straight to its sink and then Releases the job so
	// trackers can free the space. The JobTracker never holds output
	// bytes — the bounded-memory result path for outputs larger than
	// any single process should buffer.
	StreamOutput bool
	// SplitKeys selects range partitioning for the shuffle: map output
	// keys route by binary search into these sorted split keys
	// (kernels.RangePartitioner) instead of the FNV hash, so partition
	// p holds exactly the keys below partition p+1 and a StreamOutput
	// job's pieces concatenate in key order — no final merge. Must be
	// sorted and hold exactly NumReducers-1 keys (nil keeps hash
	// partitioning). Typically computed by reservoir-sampling the
	// ingest stream (kernels.RecordKeySampler).
	SplitKeys [][]byte
}

// SubmitArgs submits a job.
type SubmitArgs struct {
	Spec JobSpec
}

// SubmitReply returns the job ID.
type SubmitReply struct {
	JobID int64
}

// Task is one unit of work handed to a TaskTracker.
type Task struct {
	JobID   int64
	TaskID  int
	Kernel  string
	Args    []byte
	Block   BlockInfo // data tasks; Addr=="" for compute tasks
	Samples int64     // compute tasks
	Seed    uint64
	// NumParts > 0 on a map task asks the tracker to hash-partition
	// its output into NumParts partitions held in its shuffle store
	// instead of shipping the bytes back on the heartbeat.
	NumParts int
	// Reduce marks a reduce task: fetch partition TaskID from every
	// map task's shuffle store (Inputs) and merge with the kernel.
	Reduce bool
	// Inputs locates every map task's output for a reduce task,
	// ordered by map task ID.
	Inputs []MapOutputRef
	// Mapper is the job's resolved map variant (MapperCell or
	// MapperJava): MapperCell lets a tracker with an accelerator run
	// the kernel's accelerated variant; trackers without one (or
	// kernels without a variant) run the bit-identical host path.
	Mapper string
	// StreamOutput marks a final-phase task whose output stays in the
	// executing tracker's shuffle store (reported by location, fetched
	// by the client) instead of riding the heartbeat.
	StreamOutput bool
	// SplitKeys carries the job's range-partition split keys to map
	// tasks (see JobSpec.SplitKeys); kernels with a Partition function
	// route by range when present and by hash otherwise.
	SplitKeys [][]byte
}

// MapOutputRef locates one stored task output: a map task's shuffle
// partition (reduce inputs) or a streamed final output piece
// (StatusReply.Outputs). MapTask/Part are the FetchPartition
// coordinates; streamed outputs use the sentinel conventions of
// streamedMapKey/streamedReduceKey.
type MapOutputRef struct {
	MapTask int
	Part    int
	Addr    string // serving TaskTracker's shuffle-store address
	// Raw marks a streamed output piece stored as raw result bytes
	// (the kernel's RawOutput hook unwrapped the task encoding before
	// storing): the client may fetch it in bounded chunks and write
	// them straight to the sink, no whole-piece decode step.
	Raw bool
}

// TaskResult reports one completed or failed task attempt.
type TaskResult struct {
	JobID  int64
	TaskID int
	Reduce bool
	// Output is the task's result bytes: the map output on the
	// centralized path, the merged partition on the reduce path, and
	// empty for shuffle-path map tasks (their bytes stay in the
	// tracker's shuffle store — the heartbeat carries only metadata).
	Output []byte
	// ShuffleAddr is where a shuffle-path map task's partitions are
	// served from.
	ShuffleAddr string
	// Err reports a failed attempt (unknown kernel, fetch error,
	// map/reduce error) on the next heartbeat, so the JobTracker
	// re-issues immediately instead of waiting out the lease.
	Err string
	// BadAddr names the unreachable shuffle store behind a reduce
	// fetch failure, so the JobTracker can re-run the map tasks whose
	// outputs died with that tracker.
	BadAddr string
	// PartBytes reports, for a shuffle-path map task, the stored size
	// of each of its partitions. The JobTracker sums them per
	// partition and hands out the heaviest reduce ranges first (LPT),
	// so one skewed range cannot serialize the job's tail.
	PartBytes []int64
}

// HeartbeatArgs is the TaskTracker's periodic report. The first
// heartbeat registers the tracker with the JobTracker's membership
// view (nothing is wired at boot); every later one refreshes its
// liveness.
type HeartbeatArgs struct {
	TrackerID string
	// LocalDataNode is the DataNode co-located with this tracker
	// (same machine in the paper's deployment); the JobTracker
	// prefers handing the tracker tasks whose block lives there.
	LocalDataNode string
	// Rack is the tracker's rack; the grant loop prefers tasks whose
	// block has a replica on it when no node-local task is pending ("",
	// like every pre-rack tracker, reads as the default rack).
	Rack string
	// ShuffleAddr is the tracker's shuffle-store (data plane) address.
	// The JobTracker's membership view keys shuffle state by it: when
	// the tracker is declared dead, map outputs recorded at this
	// address are proactively reopened.
	ShuffleAddr string
	// Device is the tracker's device kind (DeviceCell for an
	// accelerator-equipped node, DeviceHost otherwise): the
	// JobTracker's device-affinity pass steers accelerated map tasks
	// toward matching trackers, and Status surfaces the cluster's
	// device profile.
	Device    string
	FreeSlots int
	Completed []TaskResult
	// HeldJobs lists jobs whose shuffle partitions this tracker still
	// stores; the reply's PurgeJobs names the ones safe to free.
	HeldJobs []int64
	// HeldBytes reports the resident payload bytes behind each entry
	// of HeldJobs — the per-job store accounting the JobTracker sums
	// into each tenant's spill-budget usage.
	HeldBytes map[int64]int64
}

// HeartbeatReply assigns up to FreeSlots new tasks.
type HeartbeatReply struct {
	Tasks []Task
	// PurgeJobs are held jobs that finished (or are unknown): the
	// tracker drops their shuffle partitions.
	PurgeJobs []int64
	// Drain tells the tracker it is being decommissioned: take no new
	// work, finish in-flight tasks, keep serving (and heartbeating
	// for) held shuffle/output state until the JobTracker purges it,
	// then exit.
	Drain bool
}

// DecommissionTrackerArgs asks the JobTracker to gracefully retire a
// TaskTracker: its heartbeats start carrying Drain until its in-flight
// tasks and held shuffle state have drained.
type DecommissionTrackerArgs struct {
	TrackerID string
}

// DecommissionTrackerReply acknowledges the decommission request.
type DecommissionTrackerReply struct{}

// TrackerInfo is one TaskTracker's row in a ListTrackers reply.
type TrackerInfo struct {
	ID     string
	Rack   string
	Device string
	// State is the tracker's lifecycle state: "alive", "draining" or
	// "dead".
	State string
}

// ListTrackersArgs asks for the JobTracker's membership view.
type ListTrackersArgs struct{}

// ListTrackersReply lists every tracker that has ever heartbeated,
// sorted by ID.
type ListTrackersReply struct {
	Trackers []TrackerInfo
}

// StatusArgs polls a job.
type StatusArgs struct {
	JobID int64
}

// StatusReply reports completion; Result is the kernel's reduced
// output once Done.
type StatusReply struct {
	Done bool
	// Completed counts finished tasks across both phases; Total is
	// map tasks plus reduce tasks (reduce tasks exist only on the
	// distributed-shuffle path).
	Completed int
	Total     int
	Result    []byte
	// Err is the terminal job error: a task that exhausted its
	// attempt budget or a failed final reduce. Done is true when set.
	Err string
	// Attempts counts every attempt launched, including re-issues
	// after lease expiry and speculative duplicates; Counts holds
	// winning attempts per tracker ID — the scheduler's per-worker
	// imbalance view.
	Attempts int
	Counts   map[string]int
	// Devices maps every tracker that has heartbeated to its device
	// kind (DeviceCell or DeviceHost) — read alongside Counts, it
	// shows how completions skew toward accelerated nodes on a
	// heterogeneous cluster.
	Devices map[string]string
	// Outputs lists a StreamOutput job's stored result pieces in task
	// order once Done: the client fetches each from its tracker's
	// shuffle store and streams it to the sink. Empty for jobs whose
	// Result travelled inline.
	Outputs []MapOutputRef
}

// ReleaseArgs tells the JobTracker a StreamOutput job's results have
// been consumed: trackers may free the stored output pieces on their
// next heartbeat.
type ReleaseArgs struct {
	JobID int64
}

// ReleaseReply acknowledges the release.
type ReleaseReply struct{}

// KillArgs terminates a job: its unfinished work is abandoned, its
// shuffle/spill/streamed-output state is freed on the trackers' next
// heartbeats, and Status reports the kill as the job's terminal error.
// A non-empty Tenant must match the job's tenant — one tenant cannot
// kill another's job.
type KillArgs struct {
	JobID  int64
	Tenant string
}

// KillReply acknowledges the kill. AlreadyDone reports that the job
// had already reached a terminal state, so the kill changed nothing.
type KillReply struct {
	AlreadyDone bool
}

// ListJobsArgs asks for the job table, optionally filtered to one
// tenant ("" lists every tenant's jobs).
type ListJobsArgs struct {
	Tenant string
}

// ListJobsReply returns the matching jobs in submission (ID) order.
type ListJobsReply struct {
	Jobs []JobInfo
}
