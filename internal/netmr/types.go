// Package netmr is the live system over real sockets: a compact
// Hadoop-architecture MapReduce runtime whose daemons — NameNode,
// DataNodes, JobTracker, TaskTrackers — are TCP servers exchanging
// framed gob RPCs (internal/rpcnet), storing real blocks and running
// real kernels. It is the in-process live runner's (internal/core)
// distributed sibling: same roles as the paper's §III prototype, but
// data actually crosses the network stack, including the
// DataNode→TaskTracker hop whose effective bandwidth the paper
// identified as the data-intensive bottleneck.
package netmr

// BlockInfo describes one stored block: its cluster-wide ID, size and
// the DataNode serving it.
type BlockInfo struct {
	ID   int64
	Size int64
	Addr string // DataNode RPC address
}

// --- NameNode RPC messages ---

// RegisterArgs announces a DataNode.
type RegisterArgs struct {
	Addr string
}

// RegisterReply acknowledges registration.
type RegisterReply struct{}

// AllocateArgs asks for a placement of one new block of a file.
type AllocateArgs struct {
	File      string
	Size      int64
	Preferred string // DataNode address to favour (writer locality)
}

// AllocateReply returns the new block's identity and home.
type AllocateReply struct {
	Block BlockInfo
}

// LookupArgs names a file.
type LookupArgs struct {
	File string
}

// LookupReply lists the file's blocks in order.
type LookupReply struct {
	Blocks []BlockInfo
}

// ListArgs requests the namespace listing.
type ListArgs struct{}

// ListReply returns sorted file names.
type ListReply struct {
	Files []string
}

// DeleteArgs names a file to remove.
type DeleteArgs struct {
	File string
}

// DeleteReply acknowledges deletion.
type DeleteReply struct{}

// --- DataNode RPC messages ---

// PutArgs stores a block replica.
type PutArgs struct {
	ID   int64
	Data []byte
}

// PutReply acknowledges storage.
type PutReply struct{}

// GetArgs fetches a block.
type GetArgs struct {
	ID int64
}

// GetReply carries the block data.
type GetReply struct {
	Data []byte
}

// --- JobTracker RPC messages ---

// JobSpec describes a job: either a data job over Input (one map task
// per block) or a compute job of NumTasks tasks sharing Samples.
type JobSpec struct {
	Name    string
	Kernel  string // registry name
	Args    []byte // kernel-specific, gob-encoded
	Input   string // DFS input file ("" for compute jobs)
	Samples int64  // compute jobs: total samples
	// NumTasks for compute jobs (values < 1 run as a single task).
	NumTasks int
	// Seed is the base RNG seed for compute jobs; task i draws from
	// the domain MixSeed(Seed, i). 0 selects the default seed (2009,
	// the paper's year).
	Seed uint64
}

// SubmitArgs submits a job.
type SubmitArgs struct {
	Spec JobSpec
}

// SubmitReply returns the job ID.
type SubmitReply struct {
	JobID int64
}

// Task is one unit of work handed to a TaskTracker.
type Task struct {
	JobID   int64
	TaskID  int
	Kernel  string
	Args    []byte
	Block   BlockInfo // data tasks; Addr=="" for compute tasks
	Samples int64     // compute tasks
	Seed    uint64
}

// TaskResult reports one completed task.
type TaskResult struct {
	JobID  int64
	TaskID int
	Output []byte
}

// HeartbeatArgs is the TaskTracker's periodic report.
type HeartbeatArgs struct {
	TrackerID string
	// LocalDataNode is the DataNode co-located with this tracker
	// (same machine in the paper's deployment); the JobTracker
	// prefers handing the tracker tasks whose block lives there.
	LocalDataNode string
	FreeSlots     int
	Completed     []TaskResult
}

// HeartbeatReply assigns up to FreeSlots new tasks.
type HeartbeatReply struct {
	Tasks []Task
}

// StatusArgs polls a job.
type StatusArgs struct {
	JobID int64
}

// StatusReply reports completion; Result is the kernel's reduced
// output once Done.
type StatusReply struct {
	Done      bool
	Completed int
	Total     int
	Result    []byte
	// Attempts counts every attempt launched, including re-issues
	// after lease expiry and speculative duplicates; Counts holds
	// winning attempts per tracker ID — the scheduler's per-worker
	// imbalance view.
	Attempts int
	Counts   map[string]int
}
