package netmr

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"net"
	"strings"
	"sync"
	"time"

	"hetmr/internal/flow"
	"hetmr/internal/rpcnet"
	"hetmr/internal/spill"
	"hetmr/internal/topo"
)

// Client is the user-facing handle to a running netmr cluster: DFS
// file I/O through the NameNode/DataNodes, job submission through the
// JobTracker. It keeps one pooled, multiplexed connection per daemon
// (redialed transparently if it dies); Close releases them.
type Client struct {
	nnAddr        string
	jtAddr        string
	blockSize     int64
	ingestWindow  int64
	wireCodecName string
	wire          *connCache
}

// ClientOption customizes NewClient.
type ClientOption func(*Client) error

// WithClientWireCodec makes every connection the client dials propose
// the named wire codec (spill.CodecByName), so DFS block transfers
// and output fetches are compressed on the wire when the server side
// accepts.
func WithClientWireCodec(name string) ClientOption {
	return func(c *Client) error {
		if name != "" {
			if _, ok := spill.CodecByName(name); !ok {
				return fmt.Errorf("netmr: unknown wire codec %q", name)
			}
		}
		c.wireCodecName = name
		return nil
	}
}

// WithClientIngestWindow bounds WriteFrom's in-flight block bytes: up
// to bytes of blocks may be replicating concurrently before the reader
// stalls — the write-side credit window matching the trackers' fetch
// window. Values < 1 keep the default of four block sizes. Clusters
// typically tie this to the spill watermark (WithIngestWindow does), so
// ingest can never buffer more on the network than a store would hold
// in memory.
func WithClientIngestWindow(bytes int64) ClientOption {
	return func(c *Client) error {
		if bytes > 0 {
			c.ingestWindow = bytes
		}
		return nil
	}
}

// NewClient builds a client. blockSize governs how files are cut into
// blocks on write.
func NewClient(nameNodeAddr, jobTrackerAddr string, blockSize int64, opts ...ClientOption) (*Client, error) {
	if blockSize <= 0 {
		return nil, fmt.Errorf("netmr: block size must be positive, got %d", blockSize)
	}
	c := &Client{nnAddr: nameNodeAddr, jtAddr: jobTrackerAddr, blockSize: blockSize}
	for _, o := range opts {
		if err := o(c); err != nil {
			return nil, err
		}
	}
	if c.ingestWindow <= 0 {
		c.ingestWindow = 4 * blockSize
	}
	c.wire = newConnCache(c.wireCodecName)
	return c, nil
}

// Close releases the client's cached connections. The client must not
// be used afterwards. Idempotent.
func (c *Client) Close() error {
	c.wire.close()
	return nil
}

// WriteFile stores data under name, block by block. preferred, when
// non-empty, is the DataNode address to favour for every block.
func (c *Client) WriteFile(name string, data []byte, preferred string) error {
	_, err := c.WriteFrom(name, bytes.NewReader(data), preferred)
	return err
}

// WriteFrom streams r into the DFS under name, cutting blocks at the
// client's block size. Ingest is windowed: blocks Allocate serially
// (so they land in file order) but replicate concurrently, with the
// in-flight bytes bounded by the client's ingest window — a dataset
// far larger than RAM costs O(window) memory, and the window keeps the
// network pipe full without the old one-block-per-round-trip stall.
// It returns the bytes consumed from r; on error some trailing blocks
// may not have been stored.
func (c *Client) WriteFrom(name string, r io.Reader, preferred string) (int64, error) {
	nnc, err := c.wire.get(c.nnAddr)
	if err != nil {
		return 0, err
	}
	win := flow.NewWindow(c.ingestWindow)
	var (
		wg     sync.WaitGroup
		mu     sync.Mutex
		putErr error
	)
	fail := func(err error) {
		mu.Lock()
		if putErr == nil {
			putErr = err
		}
		mu.Unlock()
	}
	failed := func() error {
		mu.Lock()
		defer mu.Unlock()
		return putErr
	}
	var total int64
	first := true
	for {
		// A fresh buffer per block: the previous block's bytes are still
		// replicating in the background. The window stalls this loop
		// before in-flight buffers exceed the ingest budget.
		buf := make([]byte, c.blockSize)
		n, rerr := io.ReadFull(r, buf)
		if rerr == io.EOF && !first {
			break // clean end on a block boundary
		}
		if rerr != nil && rerr != io.ErrUnexpectedEOF && rerr != io.EOF {
			wg.Wait()
			return total, rerr
		}
		if err := failed(); err != nil {
			// A background put failed: stop issuing new blocks.
			wg.Wait()
			return total, err
		}
		chunk := buf[:n] // n == 0 only for an empty file's first block
		credit := win.Acquire(int64(len(chunk)))
		var alloc AllocateReply
		err := nnc.Call("Allocate", AllocateArgs{
			File: name, Size: int64(len(chunk)), Preferred: preferred,
		}, &alloc)
		if err != nil {
			win.Release(credit)
			wg.Wait()
			return total, err
		}
		wg.Add(1)
		go func(blk BlockInfo, chunk []byte, credit int64) {
			defer wg.Done()
			defer win.Release(credit)
			if err := c.putBlock(nnc, name, blk, chunk); err != nil {
				fail(err)
			}
		}(alloc.Block, chunk, credit)
		total += int64(n)
		first = false
		if rerr == io.EOF || rerr == io.ErrUnexpectedEOF {
			break
		}
	}
	wg.Wait()
	if err := failed(); err != nil {
		return total, err
	}
	return total, nil
}

// putBlock stores one allocated block on every replica target.
func (c *Client) putBlock(nnc *rpcnet.Client, name string, blk BlockInfo, chunk []byte) error {
	// Every replica gets the block at write time, so readers can
	// fail over when a DataNode dies later. A placement target
	// that is down costs the block a copy, not the write: the
	// surviving replicas are confirmed back to the NameNode so
	// readers never chase the unwritten one.
	var stored []string
	var lastErr error
	for _, addr := range blk.ReplicaAddrs() {
		dnc, err := c.wire.get(addr)
		if err != nil {
			lastErr = err
			continue
		}
		err = dnc.CallTimeout("Put", PutArgs{ID: blk.ID, Data: chunk}, nil, dataCallTimeout)
		if err != nil {
			lastErr = err
			continue
		}
		stored = append(stored, addr)
	}
	if len(stored) == 0 {
		return fmt.Errorf("netmr: block %d: no replica target reachable: %v",
			blk.ID, lastErr)
	}
	if len(stored) < len(blk.ReplicaAddrs()) {
		err := nnc.Call("Confirm", ConfirmArgs{
			File: name, BlockID: blk.ID, Replicas: stored,
		}, nil)
		if err != nil {
			return err
		}
	}
	return nil
}

// ReadFile fetches name's full contents.
func (c *Client) ReadFile(name string) ([]byte, error) {
	nnc, err := c.wire.get(c.nnAddr)
	if err != nil {
		return nil, err
	}
	var lookup LookupReply
	if err := nnc.Call("Lookup", LookupArgs{File: name}, &lookup); err != nil {
		return nil, err
	}
	var out []byte
	for _, blk := range lookup.Blocks {
		data, _, err := readBlockFrom(c.wire, blk, blk.ReplicaAddrs())
		if err != nil {
			return nil, err
		}
		out = append(out, data...)
	}
	return out, nil
}

// dataCallTimeout bounds one data-plane round-trip (a DFS block Get or
// a shuffle FetchPartition): generous for real transfers, but a peer
// that hangs without closing its socket becomes a failed attempt —
// re-issued elsewhere — instead of a leaked task slot.
const dataCallTimeout = 30 * time.Second

// readBlockFrom fetches one block from the first reachable address,
// trying addrs in order and returning the address that served the read
// for the caller's accounting — the one copy of the DFS read-failover
// protocol, shared by the client and the TaskTrackers. Connections
// come from the caller's cache; a dead replica costs a failed call,
// not a poisoned cache entry (the pooled client redials on reuse).
func readBlockFrom(wire *connCache, blk BlockInfo, addrs []string) ([]byte, string, error) {
	var lastErr error
	for _, addr := range addrs {
		dnc, err := wire.get(addr)
		if err != nil {
			lastErr = err
			continue
		}
		var get GetReply
		err = dnc.CallTimeout("Get", GetArgs{ID: blk.ID}, &get, dataCallTimeout)
		if err != nil {
			lastErr = err
			continue
		}
		return get.Data, addr, nil
	}
	return nil, "", fmt.Errorf("netmr: block %d: no replica reachable: %v", blk.ID, lastErr)
}

// ListFiles returns the namespace listing.
func (c *Client) ListFiles() ([]string, error) {
	nnc, err := c.wire.get(c.nnAddr)
	if err != nil {
		return nil, err
	}
	var list ListReply
	if err := nnc.Call("List", ListArgs{}, &list); err != nil {
		return nil, err
	}
	return list.Files, nil
}

// Submit sends a job and returns its ID. An admission-control
// rejection satisfies errors.Is(err, ErrQuotaExceeded).
func (c *Client) Submit(spec JobSpec) (int64, error) {
	jtc, err := c.wire.get(c.jtAddr)
	if err != nil {
		return 0, err
	}
	var reply SubmitReply
	if err := jtc.Call("Submit", SubmitArgs{Spec: spec}, &reply); err != nil {
		return 0, quotaErr(err)
	}
	return reply.JobID, nil
}

// quotaErr restores the typed ErrQuotaExceeded sentinel on an
// admission rejection that crossed the RPC boundary as a string (gob
// flattens handler errors into RemoteError messages). Other errors
// pass through untouched.
func quotaErr(err error) error {
	var re *rpcnet.RemoteError
	if errors.As(err, &re) && strings.Contains(re.Msg, ErrQuotaExceeded.Error()) {
		// The remote message already leads with the sentinel text;
		// strip it so rewrapping doesn't print it twice.
		msg := strings.TrimPrefix(re.Msg, ErrQuotaExceeded.Error()+": ")
		return fmt.Errorf("%w: %s", ErrQuotaExceeded, msg)
	}
	return err
}

// Kill terminates a job mid-flight (or releases a finished streamed
// job's outputs). tenant, when non-empty, must match the job's tenant.
// Trackers purge the job's shuffle and spill state on their next
// heartbeats. Killing an already-finished job is not an error.
func (c *Client) Kill(jobID int64, tenant string) error {
	jtc, err := c.wire.get(c.jtAddr)
	if err != nil {
		return err
	}
	return jtc.Call("Kill", KillArgs{JobID: jobID, Tenant: tenant}, nil)
}

// ListJobs lists jobs known to the JobTracker in submission order —
// every tenant's when tenant is empty, one tenant's otherwise.
func (c *Client) ListJobs(tenant string) ([]JobInfo, error) {
	jtc, err := c.wire.get(c.jtAddr)
	if err != nil {
		return nil, err
	}
	var reply ListJobsReply
	if err := jtc.Call("ListJobs", ListJobsArgs{Tenant: tenant}, &reply); err != nil {
		return nil, err
	}
	return reply.Jobs, nil
}

// waitCallTimeout caps a single Status round-trip inside Wait, so a
// hung JobTracker surfaces as polling failures instead of blocking the
// client past its deadline. It matches dataCallTimeout: a Status reply
// carries the full job Result once done, which can be as large as a
// sort's whole output — the cap must cover a real transfer, and the
// overall Wait deadline (which always clamps the per-call timeout)
// stays the real bound against a hang.
const waitCallTimeout = dataCallTimeout

// Wait polls the job until completion or timeout, returning the
// reduced result bytes. A job that failed terminally (a task exhausted
// its attempt budget, or the final reduce errored) returns that error
// as soon as the JobTracker reports it. Every Status RPC runs under a
// per-call timeout clamped to the remaining deadline: a JobTracker
// that hangs mid-call cannot block Wait beyond its deadline.
func (c *Client) Wait(jobID int64, timeout time.Duration) ([]byte, error) {
	st, err := c.waitDone(jobID, timeout)
	if err != nil {
		return nil, err
	}
	return st.Result, nil
}

// waitDone is the polling loop shared by Wait and WaitOutput: it
// returns the job's terminal StatusReply.
func (c *Client) waitDone(jobID int64, timeout time.Duration) (StatusReply, error) {
	deadline := time.Now().Add(timeout)
	jtc, err := c.wire.get(c.jtAddr)
	if err != nil {
		return StatusReply{}, err
	}
	// Poll with exponential backoff: short jobs still see a handful of
	// quick polls, but a long-running job costs the JobTracker ~4
	// Status calls per second instead of 50 — a multi-tenant service
	// with many waiting clients would otherwise drown in polling.
	const (
		pollFloor = 5 * time.Millisecond
		pollCeil  = 250 * time.Millisecond
	)
	poll := pollFloor
	var last StatusReply
	for {
		remaining := time.Until(deadline)
		if remaining <= 0 {
			return last, fmt.Errorf("netmr: job %d timed out (%d/%d tasks done)",
				jobID, last.Completed, last.Total)
		}
		callTimeout := remaining
		if callTimeout > waitCallTimeout {
			callTimeout = waitCallTimeout
		}
		var status StatusReply
		if err := jtc.CallTimeout("Status", StatusArgs{JobID: jobID}, &status, callTimeout); err != nil {
			if time.Now().After(deadline) {
				return last, fmt.Errorf("netmr: job %d timed out (%d/%d tasks done): %v",
					jobID, last.Completed, last.Total, err)
			}
			var ne net.Error
			if errors.As(err, &ne) && ne.Timeout() {
				// The call hit its own deadline. Unlike protocol v1 the
				// connection survives — the late reply is dropped by
				// request ID — so just keep polling until the overall
				// deadline decides.
				continue
			}
			return last, err
		}
		last = status
		if status.Err != "" {
			return status, errors.New(status.Err)
		}
		if status.Done {
			return status, nil
		}
		time.Sleep(poll)
		if poll *= 2; poll > pollCeil {
			poll = pollCeil
		}
	}
}

// DecodeRawBytes decodes one gob-encoded []byte output piece — the
// WaitOutput decode hook for byte-stream kernels (aes-ctr, sort).
func DecodeRawBytes(p []byte) ([]byte, error) {
	var b []byte
	err := rpcnet.Unmarshal(p, &b)
	return b, err
}

// outputChunkBytes is WaitOutput's fetch granularity for raw-stored
// pieces: one chunk is resident at a time, so streaming a job's output
// costs O(chunk) client memory no matter how large the result is.
const outputChunkBytes = 1 << 20

// WaitOutput polls a StreamOutput job to completion, then streams its
// stored result pieces — fetched in task order straight from the
// worker trackers' shuffle stores — into w, and releases the job so
// the stores can free the space. Pieces the trackers stored raw
// (MapOutputRef.Raw) are pulled in bounded chunks, so the client's
// peak memory is O(chunk) regardless of output size; legacy encoded
// pieces are fetched whole and passed through decode when non-nil.
// The JobTracker never touches the output bytes. Returns the bytes
// written to w.
func (c *Client) WaitOutput(jobID int64, timeout time.Duration, w io.Writer, decode func([]byte) ([]byte, error)) (int64, error) {
	st, err := c.waitDone(jobID, timeout)
	if err != nil {
		return 0, err
	}
	// Release whichever way the stream ends: a fetch or sink error
	// cannot be retried through this call anyway, and without the
	// release every tracker would hold the job's full output until
	// cluster shutdown. Best effort — a failed release leaks store
	// space, never correctness.
	defer c.Release(jobID)
	if len(st.Outputs) == 0 {
		return 0, fmt.Errorf("netmr: job %d reported no streamed outputs (submit with StreamOutput for a data job)", jobID)
	}
	var total int64
	for _, ref := range st.Outputs {
		if ref.Addr == "" {
			return total, fmt.Errorf("netmr: job %d output piece (%d,%d) has no location", jobID, ref.MapTask, ref.Part)
		}
		cc, err := c.wire.get(ref.Addr)
		if err != nil {
			return total, fmt.Errorf("netmr: job %d output store %s: %w", jobID, ref.Addr, err)
		}
		if ref.Raw {
			n, err := c.streamOutputPiece(cc, jobID, ref, w)
			total += n
			if err != nil {
				return total, fmt.Errorf("netmr: job %d stream output (%d,%d) from %s: %w",
					jobID, ref.MapTask, ref.Part, ref.Addr, err)
			}
			continue
		}
		var rep FetchPartitionReply
		if err := cc.CallTimeout("FetchPartition", FetchPartitionArgs{
			JobID: jobID, MapTask: ref.MapTask, Part: ref.Part,
		}, &rep, dataCallTimeout); err != nil {
			return total, fmt.Errorf("netmr: job %d fetch output (%d,%d) from %s: %w",
				jobID, ref.MapTask, ref.Part, ref.Addr, err)
		}
		chunk := rep.Data
		if decode != nil {
			if chunk, err = decode(chunk); err != nil {
				return total, err
			}
		}
		n, err := w.Write(chunk)
		total += int64(n)
		if err != nil {
			return total, err
		}
	}
	return total, nil
}

// streamOutputPiece pulls one raw-stored output piece in
// outputChunkBytes-sized ranges and writes each to w as it lands.
func (c *Client) streamOutputPiece(cc *rpcnet.Client, jobID int64, ref MapOutputRef, w io.Writer) (int64, error) {
	var total int64
	for off := int64(0); ; {
		var rep FetchPartitionReply
		err := cc.CallTimeout("FetchPartition", FetchPartitionArgs{
			JobID: jobID, MapTask: ref.MapTask, Part: ref.Part,
			Offset: off, MaxBytes: outputChunkBytes,
		}, &rep, dataCallTimeout)
		if err != nil {
			return total, err
		}
		n, werr := w.Write(rep.Data)
		total += int64(n)
		if werr != nil {
			return total, werr
		}
		off += int64(len(rep.Data))
		if off >= rep.Size || len(rep.Data) == 0 {
			return total, nil
		}
	}
}

// Release tells the JobTracker a streamed-output job's results have
// been consumed, so trackers free the stored pieces.
func (c *Client) Release(jobID int64) error {
	jtc, err := c.wire.get(c.jtAddr)
	if err != nil {
		return err
	}
	return jtc.Call("Release", ReleaseArgs{JobID: jobID}, nil)
}

// ListTrackers reports the JobTracker's live membership view: every
// registered TaskTracker with its rack and lifecycle state.
func (c *Client) ListTrackers() ([]TrackerInfo, error) {
	jtc, err := c.wire.get(c.jtAddr)
	if err != nil {
		return nil, err
	}
	var reply ListTrackersReply
	if err := jtc.Call("ListTrackers", ListTrackersArgs{}, &reply); err != nil {
		return nil, err
	}
	return reply.Trackers, nil
}

// DecommissionTracker asks the JobTracker to drain the named tracker:
// no new work, in-flight tasks finish, held shuffle state stays
// fetchable until its jobs release it. The tracker process exits its
// loop once the drain completes.
func (c *Client) DecommissionTracker(id string) error {
	jtc, err := c.wire.get(c.jtAddr)
	if err != nil {
		return err
	}
	return jtc.Call("DecommissionTracker", DecommissionTrackerArgs{TrackerID: id}, nil)
}

// ListDataNodes reports the NameNode's live membership view: every
// registered DataNode with its rack, lifecycle state and block count.
func (c *Client) ListDataNodes() ([]DataNodeInfo, error) {
	nnc, err := c.wire.get(c.nnAddr)
	if err != nil {
		return nil, err
	}
	var reply ListDataNodesReply
	if err := nnc.Call("ListDataNodes", ListDataNodesArgs{}, &reply); err != nil {
		return nil, err
	}
	return reply.Nodes, nil
}

// DecommissionDataNode asks the NameNode to drain the DataNode at
// addr: its blocks are re-replicated onto the survivors, then the node
// is dropped from placement and from every replica set. Returns once
// the repair pass completes.
func (c *Client) DecommissionDataNode(addr string) error {
	nnc, err := c.wire.get(c.nnAddr)
	if err != nil {
		return err
	}
	return nnc.Call("DecommissionDN", DecommissionDNArgs{Addr: addr}, nil)
}

// Status fetches a job's current state, including the scheduler's
// attempt total and per-tracker completion counts.
func (c *Client) Status(jobID int64) (StatusReply, error) {
	var status StatusReply
	jtc, err := c.wire.get(c.jtAddr)
	if err != nil {
		return status, err
	}
	err = jtc.Call("Status", StatusArgs{JobID: jobID}, &status)
	return status, err
}

// SubmitAndWait is Submit followed by Wait.
func (c *Client) SubmitAndWait(spec JobSpec, timeout time.Duration) ([]byte, error) {
	id, err := c.Submit(spec)
	if err != nil {
		return nil, err
	}
	return c.Wait(id, timeout)
}

// Cluster bundles an in-process netmr deployment: one NameNode, one
// JobTracker, n DataNodes and n TaskTrackers, all on loopback TCP.
// Membership is elastic after boot: AddWorker joins a fresh
// DataNode/TaskTracker pair at runtime, DecommissionWorker drains and
// retires one without losing data or in-flight work.
type Cluster struct {
	NN     *NameNode
	JT     *JobTracker
	DNs    []*DataNode
	TTs    []*TaskTracker
	Client *Client

	// Boot parameters, retained so AddWorker can clone the original
	// per-worker configuration.
	cfg        clusterConfig
	slots      int
	blockSize  int64
	heartbeat  time.Duration
	nextWorker int

	mu sync.Mutex // guards DNs/TTs/nextWorker against concurrent membership changes
}

// ClusterOption customizes StartCluster's scheduling behaviour.
type ClusterOption func(*clusterConfig)

type clusterConfig struct {
	speculative  bool
	maxAttempts  int
	taskLease    time.Duration
	delays       []time.Duration
	replication  int
	deviceKinds  []string
	spillDir     string
	spillMem     int64 // < 0: all in memory (default)
	spillCodec   spill.Codec
	quotas       map[string]Quota
	wireCodec    string
	racks        int
	deadAfter    time.Duration
	ingestWindow int64
	fetchWindow  int64
}

// WithSpeculation enables speculative duplicates of straggling
// in-flight tasks on the JobTracker.
func WithSpeculation(on bool) ClusterOption {
	return func(c *clusterConfig) { c.speculative = on }
}

// WithMaxAttempts caps per-task attempts (0: the scheduler default).
func WithMaxAttempts(n int) ClusterOption {
	return func(c *clusterConfig) { c.maxAttempts = n }
}

// WithTaskLease overrides how long an assigned task may stay silent
// before the JobTracker re-issues it.
func WithTaskLease(d time.Duration) ClusterOption {
	return func(c *clusterConfig) { c.taskLease = d }
}

// WithTrackerDelays injects a per-task slowdown into each tracker by
// worker index (shorter slices leave the remaining trackers alone) —
// straggler fault injection for tests and benchmarks.
func WithTrackerDelays(delays []time.Duration) ClusterOption {
	return func(c *clusterConfig) { c.delays = delays }
}

// WithReplication sets the NameNode's per-block replica count (0: the
// DefaultReplication; always capped by the DataNode count).
func WithReplication(n int) ClusterOption {
	return func(c *clusterConfig) { c.replication = n }
}

// WithSpill bounds every daemon's resident data-plane memory: each
// DataNode's block store and each TaskTracker's shuffle store keeps
// payloads in memory up to memBytes and spills the rest to files
// under dir ("" selects the OS temp dir), through codec when non-nil
// (spill.Flate() for the built-in frame compressor). A negative
// memBytes keeps everything in memory — the historical behaviour and
// the default.
func WithSpill(dir string, memBytes int64, codec spill.Codec) ClusterOption {
	return func(c *clusterConfig) {
		c.spillDir = dir
		c.spillMem = memBytes
		c.spillCodec = codec
	}
}

// WithWireCodec makes every data-plane connection in the cluster —
// the client's DFS and output fetches, the trackers' block reads and
// shuffle FetchPartition pulls — propose the named rpcnet wire codec
// ("snap" or "flate"; "" disables, the default), so payloads are
// compressed on the wire per frame. Purely a transport knob: stored
// bytes and results are bit-identical with it on or off.
func WithWireCodec(name string) ClusterOption {
	return func(c *clusterConfig) { c.wireCodec = name }
}

// WithQuotas installs per-tenant quotas and fair-share weights on the
// JobTracker before any tracker heartbeats (see JobTracker.SetQuota).
func WithQuotas(quotas map[string]Quota) ClusterOption {
	return func(c *clusterConfig) { c.quotas = quotas }
}

// WithRacks spreads the workers round-robin over n named racks
// (topo.RackName); block replicas then spread across racks on write
// and repair, and the scheduler adds a rack-local grant pass between
// node-local and remote. n < 2 keeps the historical flat topology.
func WithRacks(n int) ClusterOption {
	return func(c *clusterConfig) { c.racks = n }
}

// WithDeadAfter enables dead-node detection on both masters: a
// DataNode or TaskTracker silent for longer than d is declared dead —
// its blocks re-replicated, its map outputs reopened — without waiting
// for a reader or reducer to stumble over it. Keep d several multiples
// of the cluster heartbeat. Zero (the default) keeps the lazy,
// fetch-failure-driven recovery only.
func WithDeadAfter(d time.Duration) ClusterOption {
	return func(c *clusterConfig) { c.deadAfter = d }
}

// WithIngestWindow bounds the cluster client's in-flight WriteFrom
// block bytes (see WithClientIngestWindow). Engines tie it to the
// spill watermark, so ingest credits are granted against the same
// budget the stores spill at. Values < 1 keep the client default.
func WithIngestWindow(bytes int64) ClusterOption {
	return func(c *clusterConfig) { c.ingestWindow = bytes }
}

// WithFetchWindow bounds each tracker's outstanding shuffle-fetch
// bytes (see WithTrackerFetchWindow): every FetchPartition chunk a
// tracker's reducers have in flight holds credit against this window.
// Engines tie it to the spill watermark, so the network side of the
// shuffle is bounded the same way the stores are. Values < 1 keep the
// tracker default.
func WithFetchWindow(bytes int64) ClusterOption {
	return func(c *clusterConfig) { c.fetchWindow = bytes }
}

// WithDeviceKinds sets each tracker's device profile by worker index:
// DeviceCell equips the tracker with its own Cell accelerator
// (NewCellDevice), anything else leaves it a general-purpose node. A
// shorter slice leaves the remaining trackers host-only — the paper's
// §V heterogeneous cluster of accelerated and plain nodes.
func WithDeviceKinds(kinds []string) ClusterOption {
	return func(c *clusterConfig) { c.deviceKinds = kinds }
}

// StartCluster boots a full deployment with the given worker count,
// slot count per tracker and DFS block size.
func StartCluster(workers, slots int, blockSize int64, heartbeat time.Duration, opts ...ClusterOption) (*Cluster, error) {
	if workers <= 0 {
		return nil, fmt.Errorf("netmr: need at least one worker, got %d", workers)
	}
	cfg := clusterConfig{spillMem: -1}
	for _, o := range opts {
		o(&cfg)
	}
	nn, err := StartNameNode("127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	nn.Replication = cfg.replication
	jt, err := StartJobTracker("127.0.0.1:0", nn.Addr())
	if err != nil {
		nn.Close()
		return nil, err
	}
	// Scheduling knobs are applied before any tracker or client
	// exists, so no job can have been submitted yet.
	jt.Speculative = cfg.speculative
	jt.MaxAttempts = cfg.maxAttempts
	if cfg.taskLease > 0 {
		jt.TaskLease = cfg.taskLease
	}
	for tenant, q := range cfg.quotas {
		jt.SetQuota(tenant, q)
	}
	if cfg.deadAfter > 0 {
		nn.DeadAfter = cfg.deadAfter
		jt.DeadAfter = cfg.deadAfter
	}
	c := &Cluster{
		NN: nn, JT: jt,
		cfg: cfg, slots: slots, blockSize: blockSize, heartbeat: heartbeat,
	}
	for i := 0; i < workers; i++ {
		dn, tt, err := c.startWorker(i)
		if err != nil {
			c.Shutdown()
			return nil, err
		}
		c.DNs = append(c.DNs, dn)
		c.TTs = append(c.TTs, tt)
	}
	c.nextWorker = workers
	client, err := NewClient(nn.Addr(), jt.Addr(), blockSize,
		WithClientWireCodec(cfg.wireCodec), WithClientIngestWindow(cfg.ingestWindow))
	if err != nil {
		c.Shutdown()
		return nil, err
	}
	c.Client = client
	return c, nil
}

// workerRack names worker i's rack under the configured topology ("",
// the flat default, when racks < 2).
func (c *Cluster) workerRack(i int) string {
	if c.cfg.racks < 2 {
		return ""
	}
	return topo.RackName(i % c.cfg.racks)
}

// startWorker boots worker i's DataNode/TaskTracker pair with the
// cluster's per-worker configuration. It performs network I/O (both
// daemons bind listeners and dial their masters), so callers must NOT
// hold the membership lock; the returned pair is appended to the
// roster by the caller.
func (c *Cluster) startWorker(i int) (*DataNode, *TaskTracker, error) {
	cfg := c.cfg
	rack := c.workerRack(i)
	var dnOpts []DataNodeOption
	if cfg.spillMem >= 0 {
		dnOpts = append(dnOpts, WithBlockSpill(cfg.spillDir, cfg.spillMem, cfg.spillCodec))
	}
	if rack != "" {
		dnOpts = append(dnOpts, WithDataNodeRack(rack))
	}
	if c.heartbeat > 0 {
		dnOpts = append(dnOpts, WithDataNodeHeartbeat(c.heartbeat))
	}
	dn, err := StartDataNode("127.0.0.1:0", c.NN.Addr(), dnOpts...)
	if err != nil {
		return nil, nil, err
	}
	var ttOpts []TrackerOption
	if cfg.spillMem >= 0 {
		ttOpts = append(ttOpts, WithShuffleSpill(cfg.spillDir, cfg.spillMem, cfg.spillCodec))
	}
	if i < len(cfg.delays) && cfg.delays[i] > 0 {
		ttOpts = append(ttOpts, WithTaskDelay(cfg.delays[i]))
	}
	if cfg.wireCodec != "" {
		ttOpts = append(ttOpts, WithTrackerWireCodec(cfg.wireCodec))
	}
	if cfg.fetchWindow > 0 {
		ttOpts = append(ttOpts, WithTrackerFetchWindow(cfg.fetchWindow))
	}
	if rack != "" {
		ttOpts = append(ttOpts, WithTrackerRack(rack))
	}
	if i < len(cfg.deviceKinds) && cfg.deviceKinds[i] == DeviceCell {
		dev, err := NewCellDevice()
		if err != nil {
			dn.Close()
			return nil, nil, err
		}
		ttOpts = append(ttOpts, WithAccelerator(dev))
	}
	tt, err := StartTaskTracker(fmt.Sprintf("tracker-%d", i), c.JT.Addr(), dn.Addr(), c.slots, c.heartbeat, ttOpts...)
	if err != nil {
		dn.Close()
		return nil, nil, err
	}
	return dn, tt, nil
}

// AddWorker joins one new DataNode/TaskTracker pair to the running
// cluster: the DataNode registers with the NameNode over its first
// heartbeat, the TaskTracker over its first JobTracker heartbeat — no
// master restart, no static wiring. The new worker takes the next
// round-robin rack slot.
func (c *Cluster) AddWorker() (*DataNode, *TaskTracker, error) {
	// Claim the worker index under the lock, boot outside it (the pair
	// binds listeners and dials the masters), then publish the pair. A
	// failed boot burns the index — the rack round-robin just moves on.
	c.mu.Lock()
	i := c.nextWorker
	c.nextWorker++
	c.mu.Unlock()
	dn, tt, err := c.startWorker(i)
	if err != nil {
		return nil, nil, err
	}
	c.mu.Lock()
	c.DNs = append(c.DNs, dn)
	c.TTs = append(c.TTs, tt)
	c.mu.Unlock()
	return dn, tt, nil
}

// DecommissionWorker gracefully retires worker i (by roster position):
// the JobTracker drains its tracker — no new work, in-flight tasks
// finish, held shuffle state stays fetchable until the jobs release it
// — then the NameNode re-replicates the DataNode's blocks elsewhere
// before both daemons stop. Returns once the worker has left the
// cluster; jobs running across the drain complete with bit-identical
// results.
func (c *Cluster) DecommissionWorker(i int, timeout time.Duration) error {
	// Resolve the pair under the lock, run the drain — which waits on
	// the tracker and moves block replicas over the network — outside
	// it, then unpublish by identity (concurrent membership changes may
	// have shifted the index).
	c.mu.Lock()
	if i < 0 || i >= len(c.TTs) {
		c.mu.Unlock()
		return fmt.Errorf("netmr: no worker %d (have %d)", i, len(c.TTs))
	}
	tt, dn := c.TTs[i], c.DNs[i]
	c.mu.Unlock()
	if err := c.JT.DecommissionTracker(tt.ID); err != nil {
		return err
	}
	select {
	case <-tt.Drained():
	case <-time.After(timeout):
		return fmt.Errorf("netmr: tracker %s did not drain within %v", tt.ID, timeout)
	}
	tt.Stop()
	if err := c.NN.DecommissionDataNode(dn.Addr()); err != nil {
		return err
	}
	dn.Close()
	c.mu.Lock()
	defer c.mu.Unlock()
	for j := range c.TTs {
		if c.TTs[j] == tt {
			c.TTs = append(c.TTs[:j], c.TTs[j+1:]...)
			c.DNs = append(c.DNs[:j], c.DNs[j+1:]...)
			break
		}
	}
	return nil
}

// FetchTotals sums every live tracker's block-fetch locality counters:
// fetches served by the co-located DataNode, by a same-rack DataNode,
// and by a remote rack.
func (c *Cluster) FetchTotals() (local, rack, remote int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, tt := range c.TTs {
		l, rk, r := tt.FetchStats()
		local += l
		rack += rk
		remote += r
	}
	return local, rack, remote
}

// Shutdown stops every daemon. Trackers stop concurrently: each
// graceful Stop may wait briefly for in-flight tasks, and those waits
// should overlap, not stack.
func (c *Cluster) Shutdown() {
	c.mu.Lock()
	defer c.mu.Unlock()
	var wg sync.WaitGroup
	for _, tt := range c.TTs {
		wg.Add(1)
		go func(tt *TaskTracker) {
			defer wg.Done()
			tt.Stop()
		}(tt)
	}
	wg.Wait()
	for _, dn := range c.DNs {
		dn.Close()
	}
	if c.JT != nil {
		c.JT.Close()
	}
	if c.NN != nil {
		c.NN.Close()
	}
	if c.Client != nil {
		c.Client.Close()
	}
}
