package netmr

import (
	"errors"
	"fmt"
	"sync"

	"hetmr/internal/cellbe"
	"hetmr/internal/kernels"
	"hetmr/internal/perfmodel"
	"hetmr/internal/spurt"
)

// Device kinds a tracker reports on heartbeats and the JobTracker
// surfaces in StatusReply.Devices — the cluster's device profile, the
// paper's "nodes enabled with hardware accelerators and general
// purpose nodes".
const (
	// DeviceHost is a general-purpose node: every kernel runs the host
	// (Java-path) implementation.
	DeviceHost = "host"
	// DeviceCell is an accelerator-equipped node: one Cell BE chip,
	// driven through the spurt runtime, runs map work for kernels with
	// an accelerated variant.
	DeviceCell = "cell"
)

// Mapper variants a JobSpec may request for its map tasks.
const (
	// MapperCell (the default) offloads map work to the tracker's
	// accelerator where the node has one and the kernel has an
	// accelerated variant; everywhere else the host path runs — the
	// fallback is bit-identical, so partial acceleration is purely a
	// performance choice.
	MapperCell = "cell"
	// MapperJava pins every map task to the host path.
	MapperJava = "java"
)

// errAccelFallback is returned by an accelerated kernel variant that
// declines its input (e.g. a word longer than the local-store budget):
// the tracker runs the host path instead, keeping the result identical.
var errAccelFallback = errors.New("netmr: input unsuitable for the accelerator, host fallback")

// AccelDevice is one node's accelerator: a functional Cell BE chip
// (internal/cellbe) driven through the spurt runtime for streaming and
// compute offload (the paper's direct path), with the wordcount path
// running the cellmr framework's map-stage discipline — dynamic
// sub-block claiming, DMA into the local store, per-SPE tallies —
// directly on the chip (the framework's fixed-size KV records cannot
// carry string keys). Trackers built with WithAccelerator own exactly
// one device; offload sessions on one chip serialize (cellbe.Chip
// holds its SPE contexts exclusively per session), exactly as
// concurrent map slots contended on the real hardware.
type AccelDevice struct {
	chip *cellbe.Chip
	rt   *spurt.Runtime
}

// NewCellDevice builds a per-node Cell accelerator: one chip, all
// eight SPEs, the paper's 4 KB SPE blocking.
func NewCellDevice() (*AccelDevice, error) {
	chip := cellbe.NewChip(0)
	rt, err := spurt.New(chip, perfmodel.SPEsPerCell, perfmodel.SPEBlockBytes)
	if err != nil {
		return nil, fmt.Errorf("netmr: accelerator runtime: %w", err)
	}
	return &AccelDevice{chip: chip, rt: rt}, nil
}

// Kind reports the device kind for heartbeats and status.
func (d *AccelDevice) Kind() string { return DeviceCell }

// Chip exposes the underlying chip for DMA accounting in tests and
// benchmarks.
func (d *AccelDevice) Chip() *cellbe.Chip { return d.chip }

// CountInside offloads one Pi map task: the task's sample range is
// carved into one contiguous share per SPE and each SPE seeks into the
// exact splitmix64 stream (kernels.CountInsideFrom), so the summed
// tally is bit-identical to the host kernel's single sequential pass —
// the conformance contract that makes AccelFraction a pure performance
// knob.
func (d *AccelDevice) CountInside(seed uint64, samples int64) (int64, error) {
	if samples <= 0 {
		return 0, nil
	}
	n := int64(d.rt.NSPEs())
	per := samples / n
	rem := samples % n
	results, err := d.rt.Compute(func(worker int) (int64, error) {
		// Contiguous shares, earlier workers absorbing the remainder;
		// with fewer samples than SPEs the tail workers draw nothing.
		// Any contiguous split gives the same sum — the stream seek is
		// exact.
		w := int64(worker)
		lo := w * per
		cnt := per
		if w < rem {
			lo += w
			cnt++
		} else {
			lo += rem
		}
		return kernels.CountInsideFrom(seed, lo, cnt), nil
	})
	if err != nil {
		return 0, err
	}
	var inside int64
	for _, r := range results {
		inside += r.Value
	}
	return inside, nil
}

// CTRStream offloads one AES-CTR map task through the spurt streaming
// runtime: 4 KB blocks double-buffered through the SPE local stores,
// each encrypted position-aware at base+offset. CTR mode is seekable,
// so the ciphertext is bit-identical to the host path whatever the
// blocking.
func (d *AccelDevice) CTRStream(c *kernels.Cipher, iv []byte, base int64, data []byte) ([]byte, error) {
	out := make([]byte, len(data))
	ctr := kernels.CTRBlockFuncFast(c, iv)
	kern := spurt.KernelFunc{
		KernelName: "aes-ctr",
		Fn: func(block []byte, offset int64) error {
			return ctr(block, base+offset)
		},
	}
	if err := d.rt.Stream(kern, data, out); err != nil {
		return nil, err
	}
	return out, nil
}

// wordCountSlack bounds how far past the nominal sub-block size a
// sub-block may grow while scanning for a word boundary. A single word
// longer than this declines the offload (errAccelFallback) instead of
// overrunning the local-store buffer.
const wordCountSlack = 1024

// WordCount offloads one wordcount map task: the block is carved into
// separator-aligned sub-blocks of roughly the SPE block size, each SPE
// claims sub-blocks dynamically, DMAs them into its local store and
// tallies them with the shared host kernel. Words never straddle a
// sub-block boundary and counting is a commutative fold, so the merged
// table is bit-identical to kernels.WordCount over the whole block.
func (d *AccelDevice) WordCount(data []byte) (map[string]int64, error) {
	target := d.rt.BlockBytes()
	bufBytes := target + wordCountSlack
	// Carve at separators: extend each nominal boundary to the end of
	// the word it would split.
	type span struct{ start, end int }
	var spans []span
	for start := 0; start < len(data); {
		end := start + target
		if end >= len(data) {
			end = len(data)
		} else {
			for end < len(data) && kernels.IsWordByte(data[end]) {
				if end-start >= bufBytes {
					return nil, errAccelFallback
				}
				end++
			}
		}
		spans = append(spans, span{start, end})
		start = end
	}
	if len(spans) == 0 {
		return map[string]int64{}, nil
	}
	nSPEs := d.rt.NSPEs()
	if nSPEs > len(spans) {
		nSPEs = len(spans)
	}
	// Dynamic claiming, per-worker tallies merged after the session —
	// the merge order cannot matter because the result is a bag of
	// counts.
	var claimMu sync.Mutex
	next := 0
	take := func() (span, bool) {
		claimMu.Lock()
		defer claimMu.Unlock()
		if next >= len(spans) {
			return span{}, false
		}
		s := spans[next]
		next++
		return s, true
	}
	tallies := make([]map[string]int64, nSPEs)
	err := d.chip.RunOnSPEs(nSPEs, func(spe *cellbe.SPE, worker int) error {
		buf, err := spe.LS.Alloc(bufBytes)
		if err != nil {
			return fmt.Errorf("netmr: accel wordcount: %w", err)
		}
		defer spe.LS.Free(buf)
		counts := make(map[string]int64)
		for {
			s, ok := take()
			if !ok {
				break
			}
			if err := spe.MFC.GetLarge(buf, 0, data[s.start:s.end], 0); err != nil {
				return fmt.Errorf("netmr: accel wordcount dma: %w", err)
			}
			spe.MFC.WaitTag(0)
			for w, n := range kernels.WordCount(buf.Bytes()[:s.end-s.start]) {
				counts[w] += n
			}
		}
		tallies[worker] = counts
		return nil
	})
	if err != nil {
		return nil, err
	}
	total := make(map[string]int64)
	for _, t := range tallies {
		for w, n := range t {
			total[w] += n
		}
	}
	return total, nil
}
