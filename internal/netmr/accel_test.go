package netmr

import (
	"bytes"
	"errors"
	"strings"
	"testing"
	"time"

	"hetmr/internal/kernels"
	"hetmr/internal/rpcnet"
)

// The accelerator contract: every offloaded kernel variant must be
// bit-identical to its host path, the cluster must expose its device
// profile, and the JobTracker's device-affinity pass must steer
// accelerated work toward accelerated trackers without ever idling a
// host tracker.

func TestDevicePiBitIdentical(t *testing.T) {
	dev, err := NewCellDevice()
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct {
		seed    uint64
		samples int64
	}{
		{2009, 100_000}, // many samples per SPE
		{7, 8},          // exactly one per SPE
		{7, 3},          // fewer samples than SPEs
		{7, 1},
		{7, 0},
		{42, 100_003}, // remainder spread over early SPEs
	} {
		want := kernels.CountInside(tc.seed, tc.samples)
		got, err := dev.CountInside(tc.seed, tc.samples)
		if err != nil {
			t.Fatalf("seed %d n %d: %v", tc.seed, tc.samples, err)
		}
		if got != want {
			t.Errorf("seed %d n %d: device counted %d, host %d", tc.seed, tc.samples, got, want)
		}
	}
}

func TestDeviceCTRBitIdentical(t *testing.T) {
	dev, err := NewCellDevice()
	if err != nil {
		t.Fatal(err)
	}
	c, err := kernels.NewCipher([]byte("accelerated-key!"))
	if err != nil {
		t.Fatal(err)
	}
	iv := []byte("accelerated-iv!!")
	data := make([]byte, 10_000) // crosses several 4KB SPE blocks, odd tail
	for i := range data {
		data[i] = byte(i * 31)
	}
	for _, base := range []int64{0, 5000, 64_000} {
		want := make([]byte, len(data))
		kernels.CTRStream(c, iv, base, want, data)
		got, err := dev.CTRStream(c, iv, base, data)
		if err != nil {
			t.Fatalf("base %d: %v", base, err)
		}
		if !bytes.Equal(got, want) {
			t.Errorf("base %d: device ciphertext differs from host", base)
		}
	}
}

func TestDeviceWordCountBitIdentical(t *testing.T) {
	dev, err := NewCellDevice()
	if err != nil {
		t.Fatal(err)
	}
	var b bytes.Buffer
	for i := 0; i < 2_000; i++ {
		b.WriteString("lorem ipsum becerra cell spe mapreduce word")
		b.WriteByte(byte("  \n\t."[i%5]))
	}
	data := b.Bytes() // ~90KB, words straddling every 4KB sub-block boundary
	want := kernels.WordCount(data)
	got, err := dev.WordCount(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("device counted %d distinct words, host %d", len(got), len(want))
	}
	for w, n := range want {
		if got[w] != n {
			t.Errorf("word %q: device %d, host %d", w, got[w], n)
		}
	}
	if _, err := dev.WordCount(nil); err != nil {
		t.Errorf("empty input: %v", err)
	}
}

func TestDeviceWordCountDeclinesGiantWord(t *testing.T) {
	dev, err := NewCellDevice()
	if err != nil {
		t.Fatal(err)
	}
	// One "word" larger than the sub-block buffer cannot be carved at
	// a separator: the device must decline, not overrun or split.
	giant := bytes.Repeat([]byte("x"), 8_000)
	if _, err := dev.WordCount(giant); !errors.Is(err, errAccelFallback) {
		t.Fatalf("giant word: err = %v, want errAccelFallback", err)
	}
}

// TestClusterOffloadBitIdentical proves a fully-accelerated cluster
// and an all-host cluster produce identical job results, and that the
// accelerated one actually offloaded.
func TestClusterOffloadBitIdentical(t *testing.T) {
	run := func(kinds []string, mapper string) ([]byte, *Cluster, func()) {
		c, err := StartCluster(1, 2, 1024, 5*time.Millisecond, WithDeviceKinds(kinds))
		if err != nil {
			t.Fatal(err)
		}
		raw, err := c.Client.SubmitAndWait(JobSpec{
			Name: "pi-accel", Kernel: "pi", Samples: 40_000, NumTasks: 4, Mapper: mapper,
		}, 30*time.Second)
		if err != nil {
			c.Shutdown()
			t.Fatal(err)
		}
		return raw, c, c.Shutdown
	}

	refRaw, refClus, stopRef := run(nil, MapperJava)
	defer stopRef()
	accRaw, accClus, stopAcc := run([]string{DeviceCell}, MapperCell)
	defer stopAcc()

	var ref, acc PiResult
	if err := rpcnet.Unmarshal(refRaw, &ref); err != nil {
		t.Fatal(err)
	}
	if err := rpcnet.Unmarshal(accRaw, &acc); err != nil {
		t.Fatal(err)
	}
	if ref != acc {
		t.Errorf("offload changed the result: %+v vs %+v", acc, ref)
	}
	if n := accClus.TTs[0].AccelTasks(); n != 4 {
		t.Errorf("accelerated tracker offloaded %d tasks, want 4", n)
	}
	if n := refClus.TTs[0].AccelTasks(); n != 0 {
		t.Errorf("host tracker reports %d offloads, want 0", n)
	}
	if got := accClus.TTs[0].DeviceKind(); got != DeviceCell {
		t.Errorf("device kind %q, want %q", got, DeviceCell)
	}
}

// TestJavaMapperNeverOffloads pins the mapper knob: a cell-equipped
// tracker must keep the host path when the job asks for java.
func TestJavaMapperNeverOffloads(t *testing.T) {
	c, err := StartCluster(1, 2, 1024, 5*time.Millisecond,
		WithDeviceKinds([]string{DeviceCell}))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Shutdown()
	_, err = c.Client.SubmitAndWait(JobSpec{
		Name: "pi-java", Kernel: "pi", Samples: 10_000, NumTasks: 2, Mapper: MapperJava,
	}, 30*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if n := c.TTs[0].AccelTasks(); n != 0 {
		t.Errorf("java job offloaded %d tasks, want 0", n)
	}
}

// TestStatusReportsDeviceProfile checks the cluster's device kinds
// surface through Status alongside the completion counts.
func TestStatusReportsDeviceProfile(t *testing.T) {
	c, err := StartCluster(2, 2, 1024, 5*time.Millisecond,
		WithDeviceKinds([]string{DeviceCell, DeviceHost}))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Shutdown()
	id, err := c.Client.Submit(JobSpec{
		Name: "pi-profile", Kernel: "pi", Samples: 20_000, NumTasks: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Client.Wait(id, 30*time.Second); err != nil {
		t.Fatal(err)
	}
	st, err := c.Client.Status(id)
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]string{"tracker-0": DeviceCell, "tracker-1": DeviceHost}
	if len(st.Devices) != len(want) {
		t.Fatalf("devices = %v, want %v", st.Devices, want)
	}
	for id, kind := range want {
		if st.Devices[id] != kind {
			t.Errorf("device[%s] = %q, want %q", id, st.Devices[id], kind)
		}
	}
}

// TestDeviceAffinityPass drives the JobTracker's grant passes directly
// over RPC: with one accelerated (cell-mapper) job and one host (java)
// job pending, an accelerated tracker's single slot gets the
// accelerated job's task even though the host job is older — and a
// host tracker with spare slots still drains the accelerated job's
// tasks rather than idling.
func TestDeviceAffinityPass(t *testing.T) {
	// Compute jobs never touch the NameNode, so a dead address is fine.
	jt, err := StartJobTracker("127.0.0.1:0", "127.0.0.1:1")
	if err != nil {
		t.Fatal(err)
	}
	defer jt.Close()
	jtc, err := rpcnet.Dial(jt.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer jtc.Close()

	submit := func(name, mapper string, tasks int) int64 {
		var reply SubmitReply
		err := jtc.Call("Submit", SubmitArgs{Spec: JobSpec{
			Name: name, Kernel: "pi", Samples: 1000, NumTasks: tasks, Mapper: mapper,
		}}, &reply)
		if err != nil {
			t.Fatal(err)
		}
		return reply.JobID
	}
	hostJob := submit("host-job", MapperJava, 2) // older
	cellJob := submit("cell-job", MapperCell, 2)

	heartbeat := func(tracker, device string, slots int) []Task {
		var reply HeartbeatReply
		err := jtc.Call("Heartbeat", HeartbeatArgs{
			TrackerID: tracker, Device: device, FreeSlots: slots,
		}, &reply)
		if err != nil {
			t.Fatal(err)
		}
		return reply.Tasks
	}

	// Affinity pass: one slot on an accelerated tracker takes the
	// (younger) accelerated job's task first.
	got := heartbeat("accel-1", DeviceCell, 1)
	if len(got) != 1 || got[0].JobID != cellJob {
		t.Fatalf("accel tracker granted %+v, want one task of job %d", got, cellJob)
	}
	// Symmetric: one slot on a host tracker takes the host job first.
	got = heartbeat("host-1", DeviceHost, 1)
	if len(got) != 1 || got[0].JobID != hostJob {
		t.Fatalf("host tracker granted %+v, want one task of job %d", got, hostJob)
	}
	// Fallback, not starvation: a host tracker with spare slots drains
	// the remaining pending tasks of both jobs.
	got = heartbeat("host-2", DeviceHost, 10)
	if len(got) != 2 {
		t.Fatalf("host tracker granted %d tasks, want the 2 remaining", len(got))
	}
	seen := map[int64]int{}
	for _, task := range got {
		seen[task.JobID]++
	}
	if seen[cellJob] != 1 || seen[hostJob] != 1 {
		t.Errorf("fallback grants by job = %v, want one task each", seen)
	}
}

// TestSubmitValidatesSpec pins the API-boundary checks: a negative
// reduce count (which would panic the partition hash mid-shuffle) and
// an unknown mapper variant fail the Submit RPC with clear messages.
func TestSubmitValidatesSpec(t *testing.T) {
	c := startTestCluster(t, 1, 1024)
	if err := c.Client.WriteFile("/neg", []byte("a b c"), ""); err != nil {
		t.Fatal(err)
	}
	_, err := c.Client.Submit(JobSpec{
		Name: "neg-reducers", Kernel: "wordcount", Input: "/neg", NumReducers: -1,
	})
	if err == nil || !strings.Contains(err.Error(), "NumReducers") {
		t.Errorf("negative NumReducers: err = %v, want a NumReducers message", err)
	}
	_, err = c.Client.Submit(JobSpec{
		Name: "bad-mapper", Kernel: "pi", Samples: 10, NumTasks: 1, Mapper: "fortran",
	})
	if err == nil || !strings.Contains(err.Error(), "mapper") {
		t.Errorf("unknown mapper: err = %v, want a mapper message", err)
	}
}

// hostTaskDelay models the Java (PPE) path's per-task slowness for
// the skewed-cluster runs: one real CPU backs every goroutine in the
// functional testbed, so — exactly as in the live backend's
// heterogeneous example — the device-rate gap perfmodel calibrates
// (Cell plateau ~27x the PPE's on Pi) is enacted with the tracker
// delay knob, scaled down to test time. The accelerated trackers'
// offload is real: their tasks fan over SPE goroutines and skip the
// delay entirely, so completion counts measure the scheduler pulling
// proportionally more work to the faster device.
const hostTaskDelay = 12 * time.Millisecond

// skewedClusterCounts runs one Pi job on a 50%-accelerated cluster
// (slots 1, so completion counts track per-tracker task rate) and
// returns winning-task counts summed by device kind.
func skewedClusterCounts(t testing.TB, tasks int, samplesPerTask int64) (accel, host int, c *Cluster) {
	t.Helper()
	kinds := []string{DeviceCell, DeviceCell, DeviceHost, DeviceHost}
	c, err := StartCluster(len(kinds), 1, 1024, 2*time.Millisecond,
		WithDeviceKinds(kinds),
		WithTrackerDelays([]time.Duration{0, 0, hostTaskDelay, hostTaskDelay}))
	if err != nil {
		t.Fatal(err)
	}
	id, err := c.Client.Submit(JobSpec{
		Name: "pi-skew", Kernel: "pi",
		Samples: int64(tasks) * samplesPerTask, NumTasks: tasks,
	})
	if err != nil {
		c.Shutdown()
		t.Fatal(err)
	}
	if _, err := c.Client.Wait(id, 120*time.Second); err != nil {
		c.Shutdown()
		t.Fatal(err)
	}
	st, err := c.Client.Status(id)
	if err != nil {
		c.Shutdown()
		t.Fatal(err)
	}
	for tracker, n := range st.Counts {
		switch st.Devices[tracker] {
		case DeviceCell:
			accel += n
		default:
			host += n
		}
	}
	if accel+host != tasks {
		c.Shutdown()
		t.Fatalf("counts %v sum to %d, want %d", st.Counts, accel+host, tasks)
	}
	return accel, host, c
}

// TestSkewedClusterOffload is the acceptance check (run under -race in
// CI's test matrix): on a 50%-accelerated cluster the accelerated
// trackers must complete more tasks than the host trackers.
func TestSkewedClusterOffload(t *testing.T) {
	if testing.Short() {
		t.Skip("compute-heavy skew run")
	}
	accel, host, c := skewedClusterCounts(t, 24, 100_000)
	defer c.Shutdown()
	if accel <= host {
		t.Errorf("accelerated trackers won %d tasks, host trackers %d; want accel > host", accel, host)
	}
	var offloaded int64
	for _, tt := range c.TTs {
		offloaded += tt.AccelTasks()
	}
	if offloaded == 0 {
		t.Error("no task attempt ran on an accelerator")
	}
}
