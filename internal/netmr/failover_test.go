package netmr

import (
	"bytes"
	"errors"
	"io"
	"net"
	"strings"
	"testing"
	"time"

	"hetmr/internal/rpcnet"
)

// Reliability behaviours around daemon death: replicated block reads,
// fast task-failure reporting, graceful tracker drain, and a Wait that
// honours its deadline against a hung JobTracker.

func init() {
	// A kernel whose map always fails — the poisoned task the
	// MaxAttempts exhaustion test feeds the cluster.
	RegisterKernel("poison", MapKernel{
		Map: func(Task, []byte) ([]byte, error) {
			return nil, errors.New("poisoned task")
		},
		Reduce: func([][]byte) ([]byte, error) { return nil, nil },
	})
}

func TestReadFailoverAfterDataNodeDeath(t *testing.T) {
	c := startTestCluster(t, 3, 1024)
	data := make([]byte, 10_000)
	for i := range data {
		data[i] = byte(i * 13)
	}
	if err := c.Client.WriteFile("/replicated", data, ""); err != nil {
		t.Fatal(err)
	}
	// Default replication is 2: killing any single DataNode between
	// the write and the read must leave every block readable.
	c.DNs[0].Close()
	got, err := c.Client.ReadFile("/replicated")
	if err != nil {
		t.Fatalf("read after DataNode death: %v", err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("failover read corrupted data")
	}
}

func TestWriteFailoverAfterDataNodeDeath(t *testing.T) {
	c := startTestCluster(t, 3, 1024)
	// Kill a DataNode before writing: allocations naming it lose a
	// copy, the write itself survives, and the NameNode's pruned
	// replica lists keep every block readable.
	c.DNs[2].Close()
	data := make([]byte, 8_000)
	for i := range data {
		data[i] = byte(i * 31)
	}
	if err := c.Client.WriteFile("/degraded", data, ""); err != nil {
		t.Fatalf("write with a dead DataNode: %v", err)
	}
	got, err := c.Client.ReadFile("/degraded")
	if err != nil {
		t.Fatalf("read back: %v", err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("degraded write corrupted data")
	}
	// The pruned replica lists never name the dead node.
	nnc, err := rpcnet.Dial(c.NN.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer nnc.Close()
	var lookup LookupReply
	if err := nnc.Call("Lookup", LookupArgs{File: "/degraded"}, &lookup); err != nil {
		t.Fatal(err)
	}
	dead := c.DNs[2].Addr()
	for _, blk := range lookup.Blocks {
		for _, addr := range blk.ReplicaAddrs() {
			if addr == dead {
				t.Fatalf("block %d still lists the dead DataNode %s", blk.ID, dead)
			}
		}
	}
}

func TestMapTasksSurviveDataNodeDeath(t *testing.T) {
	c := startTestCluster(t, 3, 64)
	var sb strings.Builder
	for i := 0; i < 400; i++ {
		sb.WriteString([]string{"aaa ", "bbb ", "ccc ", "ddd "}[i%4])
	}
	text := sb.String()
	if err := c.Client.WriteFile("/corpus", []byte(text), ""); err != nil {
		t.Fatal(err)
	}
	// Kill one DataNode before the job runs: every map task whose
	// primary replica died must fail over to the surviving copy.
	c.DNs[1].Close()
	result, err := c.Client.SubmitAndWait(JobSpec{
		Name: "wc-dn-death", Kernel: "wordcount", Input: "/corpus",
	}, 15*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	var counts map[string]int64
	if err := rpcnet.Unmarshal(result, &counts); err != nil {
		t.Fatal(err)
	}
	if counts["aaa"] != 100 || counts["ddd"] != 100 {
		t.Errorf("counts = %v, want 100 each", counts)
	}
}

func TestPoisonedTaskExhaustsAttemptsFast(t *testing.T) {
	// The tracker reports the kernel error on its next heartbeat; the
	// board re-issues immediately and the attempt cap turns the task
	// into a terminal job error — long before the 10s lease would
	// have expired even once.
	c, err := StartCluster(2, 2, 1024, 10*time.Millisecond, WithMaxAttempts(2))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Shutdown()
	start := time.Now()
	_, err = c.Client.SubmitAndWait(JobSpec{
		Name: "poison", Kernel: "poison", Samples: 1, NumTasks: 1,
	}, 8*time.Second)
	elapsed := time.Since(start)
	if err == nil {
		t.Fatal("poisoned job reported success")
	}
	if !strings.Contains(err.Error(), "max attempts") || !strings.Contains(err.Error(), "poisoned task") {
		t.Errorf("error %q does not name the attempt cap and the task error", err)
	}
	if elapsed > 5*time.Second {
		t.Errorf("failure took %v — reported by lease expiry, not by heartbeat", elapsed)
	}
}

func TestStopDrainsCompletedResults(t *testing.T) {
	// One tracker, long heartbeat: the task's result sits in the
	// completed queue waiting for the next beat. A graceful Stop must
	// deliver it in a final heartbeat instead of dropping it — with a
	// single tracker, a dropped result could never be recomputed.
	nn, err := StartNameNode("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer nn.Close()
	jt, err := StartJobTracker("127.0.0.1:0", nn.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer jt.Close()
	tt, err := StartTaskTracker("drainer", jt.Addr(), "", 2, 300*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	defer tt.Stop()
	client, _ := NewClient(nn.Addr(), jt.Addr(), 1024)
	id, err := client.Submit(JobSpec{Name: "pi-drain", Kernel: "pi", Samples: 1000, NumTasks: 1})
	if err != nil {
		t.Fatal(err)
	}
	// Wait until the result is computed but unreported, then stop.
	deadline := time.Now().Add(5 * time.Second)
	for {
		tt.mu.Lock()
		queued := len(tt.completed)
		tt.mu.Unlock()
		if queued > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("task never completed locally")
		}
		time.Sleep(2 * time.Millisecond)
	}
	tt.Stop()
	if _, err := client.Wait(id, 2*time.Second); err != nil {
		t.Fatalf("job did not finish from the drained final heartbeat: %v", err)
	}
}

func TestWaitHonoursDeadlineAgainstHungJobTracker(t *testing.T) {
	// A listener that accepts and reads but never replies — the hung
	// JobTracker the per-call timeout exists for.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go func(c net.Conn) {
				defer c.Close()
				io.Copy(io.Discard, c)
			}(conn)
		}
	}()
	client, err := NewClient("unused", ln.Addr().String(), 1024)
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	start := time.Now()
	_, err = client.Wait(0, 300*time.Millisecond)
	elapsed := time.Since(start)
	if err == nil {
		t.Fatal("Wait against a hung JobTracker reported success")
	}
	if !strings.Contains(err.Error(), "timed out") {
		t.Errorf("error %q is not the deadline error", err)
	}
	if elapsed > 3*time.Second {
		t.Errorf("Wait blocked %v past a 300ms deadline", elapsed)
	}
}
