package netmr

import (
	"fmt"
	"slices"
	"sync"
	"time"

	"hetmr/internal/kernels"
	"hetmr/internal/metrics"
	"hetmr/internal/rpcnet"
	"hetmr/internal/sched"
)

// jobRecord is one submitted job: its task specs plus the dynamic
// scheduler's boards tracking leases, attempts and completions — one
// board for the map phase, and on the distributed-shuffle path a
// second for the reduce phase, whose tasks become assignable once
// every map partition is in place.
type jobRecord struct {
	id      int64
	spec    JobSpec
	kern    MapKernel
	shuffle bool // distributed shuffle/reduce plane on
	// streamOut: final-phase outputs stay in the worker trackers'
	// shuffle stores; outLoc records each piece's address, Status
	// serves the refs, and the stores free them only after the client
	// Releases the job.
	streamOut bool
	outLoc    []string
	released  bool

	maps     []Task
	mapBoard *sched.Board
	mapOut   [][]byte // centralized path: map outputs
	mapLoc   []string // shuffle path: shuffle-store addr per map task
	mapDone  int

	reduces  []Task // shuffle path: reduce task templates, TaskID = partition
	redBoard *sched.Board
	redOut   [][]byte
	redDone  int
	// fetchFails counts distinct reduce-fetch failure reports per
	// shuffle-store address; a store is declared lost (its map tasks
	// reopened) only at fetchFailThreshold, so one transient dial
	// error never discards finished map work.
	fetchFails map[string]int

	finalizing bool
	done       bool
	failed     string
	result     []byte
}

// phaseOutputsReady reports whether the job's last phase has every
// output in hand. Callers hold jt.mu.
func (rec *jobRecord) phaseOutputsReady() ([][]byte, bool) {
	if rec.shuffle {
		return rec.redOut, rec.redDone == len(rec.reduces)
	}
	return rec.mapOut, rec.mapDone == len(rec.maps)
}

// reduceTask materializes reduce task p with the current map output
// locations. Callers hold jt.mu and guarantee every map is done.
func (rec *jobRecord) reduceTask(p int) Task {
	t := rec.reduces[p]
	t.Inputs = make([]MapOutputRef, len(rec.maps))
	for i, addr := range rec.mapLoc {
		t.Inputs[i] = MapOutputRef{MapTask: i, Part: p, Addr: addr}
	}
	return t
}

// JobTracker is the TCP master daemon: it expands jobs into tasks and
// serves them to TaskTrackers over heartbeats through the shared
// dynamic scheduler (internal/sched.Board) — pull-based leases with
// locality preference, re-issue of tasks whose lease expires (tracker
// failure) or whose attempt reports an error (fast failure path), and
// optional speculative duplication of the longest-running in-flight
// task when a tracker has idle slots, first finished attempt winning.
//
// The JobTracker is a pure control plane: on the distributed-shuffle
// path map output bytes stay in the mapper trackers' shuffle stores
// and heartbeats carry partition locations, not data. Only the final
// reduce outputs (and centralized-path map outputs) cross it;
// DataPlaneBytes meters exactly that traffic.
type JobTracker struct {
	srv    *rpcnet.Server
	nnAddr string
	// TaskLease is how long an assigned task may stay silent before it
	// is handed to another tracker. Read at job submission; set it (and
	// the scheduling knobs below) before submitting jobs.
	TaskLease time.Duration
	// Speculative enables speculative duplicates for subsequently
	// submitted jobs; MaxAttempts caps per-task attempts (0: the
	// scheduler default).
	Speculative bool
	MaxAttempts int

	mu        sync.Mutex
	nextJob   int64
	jobs      map[int64]*jobRecord
	devices   map[string]string // tracker ID -> device kind, from heartbeats
	dataBytes int64             // task output bytes carried by heartbeats
}

// StartJobTracker launches the JobTracker on addr.
func StartJobTracker(addr, nameNodeAddr string) (*JobTracker, error) {
	srv, err := rpcnet.NewServer(addr)
	if err != nil {
		return nil, err
	}
	jt := &JobTracker{
		srv:       srv,
		nnAddr:    nameNodeAddr,
		TaskLease: 10 * time.Second,
		jobs:      make(map[int64]*jobRecord),
		devices:   make(map[string]string),
	}
	srv.Handle("Submit", jt.handleSubmit)
	srv.Handle("Heartbeat", jt.handleHeartbeat)
	srv.Handle("Status", jt.handleStatus)
	srv.Handle("Release", jt.handleRelease)
	return jt, nil
}

// Addr returns the JobTracker's RPC address.
func (jt *JobTracker) Addr() string { return jt.srv.Addr() }

// Close stops the server.
func (jt *JobTracker) Close() error { return jt.srv.Close() }

// DataPlaneBytes reports how many winning task output bytes heartbeats
// have delivered to the JobTracker (late duplicates and redelivered
// reports excluded) — the shuffle benchmark's proof that the
// distributed path moved the map outputs off the master.
func (jt *JobTracker) DataPlaneBytes() int64 {
	jt.mu.Lock()
	defer jt.mu.Unlock()
	return jt.dataBytes
}

func (jt *JobTracker) handleSubmit(body []byte) (any, error) {
	var args SubmitArgs
	if err := rpcnet.Unmarshal(body, &args); err != nil {
		return nil, err
	}
	kern, err := lookupKernel(args.Spec.Kernel)
	if err != nil {
		return nil, err
	}
	// API-boundary validation: a negative reduce count would otherwise
	// surface as a partition-hash divide-by-zero deep inside a mapper.
	if args.Spec.NumReducers < 0 {
		return nil, fmt.Errorf("netmr: job %q: NumReducers must be >= 0, got %d",
			args.Spec.Name, args.Spec.NumReducers)
	}
	mapper := args.Spec.Mapper
	if mapper == "" {
		mapper = MapperCell
	}
	if mapper != MapperCell && mapper != MapperJava {
		return nil, fmt.Errorf("netmr: job %q: unknown mapper variant %q (%s|%s)",
			args.Spec.Name, args.Spec.Mapper, MapperCell, MapperJava)
	}
	tasks, err := jt.expand(args.Spec)
	if err != nil {
		return nil, err
	}
	opts := sched.Options{Speculative: jt.Speculative, MaxAttempts: jt.MaxAttempts}
	// Map tasks prefer accelerated trackers when the job offloads;
	// reduce tasks are host merges either way. The affinity steers the
	// grant order only — mismatched trackers still take the work before
	// idling.
	mapOpts := opts
	mapOpts.Affinity = DeviceHost
	if mapper == MapperCell {
		mapOpts.Affinity = DeviceCell
	}
	redOpts := opts
	redOpts.Affinity = DeviceHost
	jt.mu.Lock()
	defer jt.mu.Unlock()
	mapBoard, err := sched.NewBoard(len(tasks), jt.TaskLease, mapOpts)
	if err != nil {
		return nil, err
	}
	id := jt.nextJob
	jt.nextJob++
	rec := &jobRecord{
		id:     id,
		spec:   args.Spec,
		kern:   kern,
		maps:   make([]Task, 0, len(tasks)),
		mapOut: make([][]byte, len(tasks)),
	}
	rec.mapBoard = mapBoard
	rec.shuffle = args.Spec.NumReducers > 0 && args.Spec.Input != "" &&
		kern.Partition != nil && kern.Merge != nil
	// Streamed results apply to data jobs only: compute jobs (pi)
	// reduce to a handful of bytes that ride the heartbeat anyway.
	rec.streamOut = args.Spec.StreamOutput && args.Spec.Input != ""
	for _, t := range tasks {
		t.JobID = id
		t.Mapper = mapper
		if rec.shuffle {
			t.NumParts = args.Spec.NumReducers
		} else if rec.streamOut {
			t.StreamOutput = true
		}
		rec.maps = append(rec.maps, t)
	}
	if rec.streamOut && !rec.shuffle {
		rec.outLoc = make([]string, len(rec.maps))
	}
	if rec.shuffle {
		r := args.Spec.NumReducers
		rec.redBoard, err = sched.NewBoard(r, jt.TaskLease, redOpts)
		if err != nil {
			return nil, err
		}
		rec.redOut = make([][]byte, r)
		rec.mapLoc = make([]string, len(tasks))
		rec.fetchFails = make(map[string]int)
		for p := 0; p < r; p++ {
			rec.reduces = append(rec.reduces, Task{
				JobID:        id,
				TaskID:       p,
				Kernel:       args.Spec.Kernel,
				Args:         args.Spec.Args,
				Reduce:       true,
				Mapper:       mapper,
				StreamOutput: rec.streamOut,
			})
		}
		if rec.streamOut {
			rec.outLoc = make([]string, r)
		}
	}
	jt.jobs[id] = rec
	return SubmitReply{JobID: id}, nil
}

// expand turns a job spec into map tasks: one per input block for data
// jobs, NumTasks equal shares for compute jobs.
func (jt *JobTracker) expand(spec JobSpec) ([]Task, error) {
	if spec.Input != "" {
		nnc, err := rpcnet.Dial(jt.nnAddr)
		if err != nil {
			return nil, err
		}
		defer nnc.Close()
		var lookup LookupReply
		if err := nnc.Call("Lookup", LookupArgs{File: spec.Input}, &lookup); err != nil {
			return nil, err
		}
		var tasks []Task
		for i, blk := range lookup.Blocks {
			tasks = append(tasks, Task{
				TaskID: i,
				Kernel: spec.Kernel,
				Args:   spec.Args,
				Block:  blk,
			})
		}
		if len(tasks) == 0 {
			return nil, fmt.Errorf("netmr: input %q has no blocks", spec.Input)
		}
		return tasks, nil
	}
	if spec.Samples <= 0 {
		return nil, fmt.Errorf("netmr: job %q has neither input nor samples", spec.Name)
	}
	seed := spec.Seed
	if seed == 0 {
		seed = 2009
	}
	// The canonical decomposition (kernels.SplitSamples) is shared
	// with the engine layer so Pi results agree across backends.
	var tasks []Task
	for i, split := range kernels.SplitSamples(spec.Samples, spec.NumTasks, seed) {
		tasks = append(tasks, Task{
			TaskID:  i,
			Kernel:  spec.Kernel,
			Args:    spec.Args,
			Samples: split.Samples,
			Seed:    split.Seed,
		})
	}
	return tasks, nil
}

func (jt *JobTracker) handleHeartbeat(body []byte) (any, error) {
	var args HeartbeatArgs
	if err := rpcnet.Unmarshal(body, &args); err != nil {
		return nil, err
	}
	jt.mu.Lock()
	defer jt.mu.Unlock()
	// Track the cluster's device profile (trackers started before the
	// Device field default to host).
	device := args.Device
	if device == "" {
		device = DeviceHost
	}
	jt.devices[args.TrackerID] = device
	// Record completions and failures. The boards keep the first
	// finished attempt of each task and discard late duplicates
	// (speculative or re-issued after a lease expiry); reported
	// failures free the task for immediate re-issue instead of
	// waiting out the lease.
	for _, res := range args.Completed {
		rec, ok := jt.jobs[res.JobID]
		if !ok || rec.done || rec.finalizing {
			continue
		}
		jt.recordResult(rec, args.TrackerID, res)
	}
	// Kick off finalization for jobs whose last phase just completed.
	// The kernel's Reduce runs outside jt.mu (it may be arbitrarily
	// expensive), and its error becomes the job's terminal error in
	// StatusReply instead of leaking to an arbitrary heartbeating
	// tracker. Streamed-output jobs skip the fold entirely: their
	// result is the set of stored pieces, already in place.
	for _, rec := range jt.jobs {
		if rec.done || rec.finalizing || rec.failed != "" {
			continue
		}
		if outputs, ready := rec.phaseOutputsReady(); ready {
			if rec.streamOut {
				rec.done = true
				continue
			}
			rec.finalizing = true
			go jt.finalize(rec, outputs)
		}
	}
	// Hand out work, oldest jobs first, in three passes.
	//
	// Device-affinity pass: boards whose tasks prefer this tracker's
	// device kind are served first — an accelerated job's map tasks
	// land on accelerated trackers (and host jobs' on host trackers)
	// while matching work remains. Within a board, data-local map
	// tasks go first (a replica on the tracker's co-located DataNode —
	// the paper's "tries to minimize the number of remote block
	// accesses"), then any pending task; reduce tasks join the pool
	// once every map partition is in place.
	//
	// Pending pass: remaining slots take any job's pending work —
	// affinity orders grants, it never idles a mismatched tracker
	// (host trackers fall back to accelerated tasks via the
	// bit-identical host kernel rather than sit empty).
	//
	// Speculative pass: only when every job's pending work is
	// exhausted do the remaining slots fill with duplicates of the
	// longest-running in-flight tasks, again oldest job first —
	// speculation is what idle capacity does, never what starves a
	// younger job's real work.
	var reply HeartbeatReply
	now := time.Now()
	eachJob := func(fn func(rec *jobRecord)) {
		for id := int64(0); id < jt.nextJob && len(reply.Tasks) < args.FreeSlots; id++ {
			if rec, ok := jt.jobs[id]; ok && !rec.done && !rec.finalizing {
				fn(rec)
			}
		}
	}
	assignPending := func(rec *jobRecord, maps, reduces bool) {
		if maps {
			var local func(int) bool
			if args.LocalDataNode != "" {
				local = func(i int) bool {
					return slices.Contains(rec.maps[i].Block.ReplicaAddrs(), args.LocalDataNode)
				}
			}
			for _, i := range rec.mapBoard.Assign(args.TrackerID, args.FreeSlots-len(reply.Tasks), now, local) {
				reply.Tasks = append(reply.Tasks, rec.maps[i])
			}
		}
		if reduces && rec.shuffle && rec.mapDone == len(rec.maps) {
			for _, p := range rec.redBoard.Assign(args.TrackerID, args.FreeSlots-len(reply.Tasks), now, nil) {
				reply.Tasks = append(reply.Tasks, rec.reduceTask(p))
			}
		}
	}
	eachJob(func(rec *jobRecord) { // device-affinity pass
		assignPending(rec,
			rec.mapBoard.Affinity() == device,
			rec.redBoard != nil && rec.redBoard.Affinity() == device)
	})
	eachJob(func(rec *jobRecord) { // pending pass
		assignPending(rec, true, true)
	})
	eachJob(func(rec *jobRecord) { // speculative pass
		for _, i := range rec.mapBoard.Speculate(args.TrackerID, args.FreeSlots-len(reply.Tasks), now) {
			reply.Tasks = append(reply.Tasks, rec.maps[i])
		}
		if rec.shuffle && rec.mapDone == len(rec.maps) {
			for _, p := range rec.redBoard.Speculate(args.TrackerID, args.FreeSlots-len(reply.Tasks), now) {
				reply.Tasks = append(reply.Tasks, rec.reduceTask(p))
			}
		}
	})
	// Shuffle-store GC: name the held jobs that finished, so trackers
	// free their partitions. A streamed-output job's stores also hold
	// its results — those survive until the client Releases the job
	// (or the job fails terminally).
	for _, id := range args.HeldJobs {
		rec, ok := jt.jobs[id]
		if !ok || (rec.done && (!rec.streamOut || rec.released || rec.failed != "")) {
			reply.PurgeJobs = append(reply.PurgeJobs, id)
		}
	}
	return reply, nil
}

// handleRelease marks a streamed-output job's results consumed:
// trackers free the stored pieces on their next heartbeat.
func (jt *JobTracker) handleRelease(body []byte) (any, error) {
	var args ReleaseArgs
	if err := rpcnet.Unmarshal(body, &args); err != nil {
		return nil, err
	}
	jt.mu.Lock()
	defer jt.mu.Unlock()
	rec, ok := jt.jobs[args.JobID]
	if !ok {
		return nil, fmt.Errorf("netmr: unknown job %d", args.JobID)
	}
	rec.released = true
	return ReleaseReply{}, nil
}

// recordResult folds one task report into the job. Callers hold jt.mu.
func (jt *JobTracker) recordResult(rec *jobRecord, trackerID string, res TaskResult) {
	if res.Reduce {
		if !rec.shuffle || res.TaskID < 0 || res.TaskID >= len(rec.reduces) {
			return
		}
		if res.Err != "" {
			jt.failAttempt(rec, rec.redBoard, trackerID, res, "reduce")
			return
		}
		if rec.redBoard.Complete(res.TaskID, trackerID) {
			jt.addDataBytes(int64(len(res.Output)))
			if rec.streamOut {
				rec.outLoc[res.TaskID] = res.ShuffleAddr
			} else {
				rec.redOut[res.TaskID] = res.Output
			}
			rec.redDone++
			// This reduce fetched from every shuffle store, so any
			// accumulated transient-blame against them is stale.
			clear(rec.fetchFails)
		}
		return
	}
	if res.TaskID < 0 || res.TaskID >= len(rec.maps) {
		return
	}
	if res.Err != "" {
		jt.failAttempt(rec, rec.mapBoard, trackerID, res, "map")
		return
	}
	if rec.mapBoard.Complete(res.TaskID, trackerID) {
		jt.addDataBytes(int64(len(res.Output)))
		switch {
		case rec.shuffle:
			rec.mapLoc[res.TaskID] = res.ShuffleAddr
		case rec.streamOut:
			rec.outLoc[res.TaskID] = res.ShuffleAddr
		default:
			rec.mapOut[res.TaskID] = res.Output
		}
		rec.mapDone++
	}
}

// addDataBytes meters winning task output bytes that crossed the
// heartbeat channel — the JobTracker's local counter plus the shared
// process-wide meter. Callers hold jt.mu.
func (jt *JobTracker) addDataBytes(n int64) {
	jt.dataBytes += n
	metrics.DataPlaneBytes.Add(n)
}

// fetchFailThreshold is how many reduce-fetch failure reports an
// address accumulates before its map outputs are declared lost — one
// transient error re-issues only the reduce attempt, repeated ones
// trigger the shuffle re-run (Hadoop's repeated-notification rule).
const fetchFailThreshold = 2

// failAttempt handles a reported task failure, immediately freeing the
// task for re-issue. A reduce fetch failure (BadAddr set) is an
// infrastructure failure: it never spends the task's failure budget,
// and once fetchFailThreshold distinct reports blame one shuffle
// store, that store's map tasks reopen for the shuffle re-run. A
// genuine task error spends the budget, and exhausting it turns into
// the job's terminal error. Redelivered reports (heartbeats retry
// after lost replies) are ignored whole. Callers hold jt.mu.
func (jt *JobTracker) failAttempt(rec *jobRecord, board *sched.Board, trackerID string, res TaskResult, phase string) {
	if res.BadAddr != "" && rec.shuffle {
		if !board.Release(res.TaskID, trackerID) {
			return // duplicate or stale report: the attempt is already resolved
		}
		rec.fetchFails[res.BadAddr]++
		if rec.fetchFails[res.BadAddr] >= fetchFailThreshold {
			delete(rec.fetchFails, res.BadAddr)
			for i, loc := range rec.mapLoc {
				if loc == res.BadAddr {
					rec.mapBoard.Reopen(i)
					rec.mapLoc[i] = ""
					rec.mapDone--
				}
			}
		}
		return
	}
	dropped, exhausted := board.Fail(res.TaskID, trackerID)
	if !dropped {
		return // duplicate or stale report: the attempt is already resolved
	}
	if exhausted {
		rec.failed = fmt.Sprintf("netmr: %s task %d of job %d failed after max attempts: %s",
			phase, res.TaskID, rec.id, res.Err)
		rec.done = true
	}
}

// finalize folds the job's last-phase outputs into its result with the
// kernel's Reduce, outside jt.mu.
func (jt *JobTracker) finalize(rec *jobRecord, outputs [][]byte) {
	result, err := rec.kern.Reduce(outputs)
	jt.mu.Lock()
	defer jt.mu.Unlock()
	if err != nil {
		rec.failed = fmt.Sprintf("netmr: reduce job %d: %v", rec.id, err)
	} else {
		rec.result = result
	}
	rec.done = true
}

func (jt *JobTracker) handleStatus(body []byte) (any, error) {
	var args StatusArgs
	if err := rpcnet.Unmarshal(body, &args); err != nil {
		return nil, err
	}
	jt.mu.Lock()
	defer jt.mu.Unlock()
	rec, ok := jt.jobs[args.JobID]
	if !ok {
		return nil, fmt.Errorf("netmr: unknown job %d", args.JobID)
	}
	attempts := rec.mapBoard.Attempts()
	counts := rec.mapBoard.Counts()
	if rec.redBoard != nil {
		attempts += rec.redBoard.Attempts()
		for w, n := range rec.redBoard.Counts() {
			counts[w] += n
		}
	}
	// Copied under the lock: the reply is marshalled after the handler
	// returns, and heartbeats keep writing the device map.
	devices := make(map[string]string, len(jt.devices))
	for id, kind := range jt.devices {
		devices[id] = kind
	}
	// A finished streamed-output job's result is its list of stored
	// pieces, in task order.
	var outputs []MapOutputRef
	if rec.streamOut && rec.done && rec.failed == "" {
		outputs = make([]MapOutputRef, len(rec.outLoc))
		for i, addr := range rec.outLoc {
			if rec.shuffle {
				outputs[i] = MapOutputRef{MapTask: -1, Part: i, Addr: addr}
			} else {
				outputs[i] = MapOutputRef{MapTask: i, Part: -1, Addr: addr}
			}
		}
	}
	return StatusReply{
		Done:      rec.done,
		Completed: rec.mapDone + rec.redDone,
		Total:     len(rec.maps) + len(rec.reduces),
		Result:    rec.result,
		Err:       rec.failed,
		Attempts:  attempts,
		Counts:    counts,
		Devices:   devices,
		Outputs:   outputs,
	}, nil
}
