package netmr

import (
	"fmt"
	"sync"
	"time"

	"hetmr/internal/kernels"
	"hetmr/internal/rpcnet"
	"hetmr/internal/sched"
)

// jobRecord is one submitted job: its task specs plus the dynamic
// scheduler's board tracking leases, attempts and completions.
type jobRecord struct {
	id        int64
	spec      JobSpec
	tasks     []Task
	board     *sched.Board
	outputs   [][]byte
	completed int
	done      bool
	result    []byte
}

// JobTracker is the TCP master daemon: it expands jobs into tasks and
// serves them to TaskTrackers over heartbeats through the shared
// dynamic scheduler (internal/sched.Board) — pull-based leases with
// locality preference, re-issue of tasks whose lease expires (tracker
// failure), and optional speculative duplication of the
// longest-running in-flight task when a tracker has idle slots, first
// finished attempt winning. Finished tasks are reduced into the job
// result.
type JobTracker struct {
	srv    *rpcnet.Server
	nnAddr string
	// TaskLease is how long an assigned task may stay silent before it
	// is handed to another tracker. Read at job submission; set it (and
	// the scheduling knobs below) before submitting jobs.
	TaskLease time.Duration
	// Speculative enables speculative duplicates for subsequently
	// submitted jobs; MaxAttempts caps per-task attempts (0: the
	// scheduler default).
	Speculative bool
	MaxAttempts int

	mu      sync.Mutex
	nextJob int64
	jobs    map[int64]*jobRecord
}

// StartJobTracker launches the JobTracker on addr.
func StartJobTracker(addr, nameNodeAddr string) (*JobTracker, error) {
	srv, err := rpcnet.NewServer(addr)
	if err != nil {
		return nil, err
	}
	jt := &JobTracker{
		srv:       srv,
		nnAddr:    nameNodeAddr,
		TaskLease: 10 * time.Second,
		jobs:      make(map[int64]*jobRecord),
	}
	srv.Handle("Submit", jt.handleSubmit)
	srv.Handle("Heartbeat", jt.handleHeartbeat)
	srv.Handle("Status", jt.handleStatus)
	return jt, nil
}

// Addr returns the JobTracker's RPC address.
func (jt *JobTracker) Addr() string { return jt.srv.Addr() }

// Close stops the server.
func (jt *JobTracker) Close() error { return jt.srv.Close() }

func (jt *JobTracker) handleSubmit(body []byte) (any, error) {
	var args SubmitArgs
	if err := rpcnet.Unmarshal(body, &args); err != nil {
		return nil, err
	}
	if _, err := lookupKernel(args.Spec.Kernel); err != nil {
		return nil, err
	}
	tasks, err := jt.expand(args.Spec)
	if err != nil {
		return nil, err
	}
	jt.mu.Lock()
	defer jt.mu.Unlock()
	board, err := sched.NewBoard(len(tasks), jt.TaskLease, sched.Options{
		Speculative: jt.Speculative,
		MaxAttempts: jt.MaxAttempts,
	})
	if err != nil {
		return nil, err
	}
	id := jt.nextJob
	jt.nextJob++
	rec := &jobRecord{
		id:      id,
		spec:    args.Spec,
		board:   board,
		outputs: make([][]byte, len(tasks)),
	}
	for _, t := range tasks {
		t.JobID = id
		rec.tasks = append(rec.tasks, t)
	}
	jt.jobs[id] = rec
	return SubmitReply{JobID: id}, nil
}

// expand turns a job spec into tasks: one per input block for data
// jobs, NumTasks equal shares for compute jobs.
func (jt *JobTracker) expand(spec JobSpec) ([]Task, error) {
	if spec.Input != "" {
		nnc, err := rpcnet.Dial(jt.nnAddr)
		if err != nil {
			return nil, err
		}
		defer nnc.Close()
		var lookup LookupReply
		if err := nnc.Call("Lookup", LookupArgs{File: spec.Input}, &lookup); err != nil {
			return nil, err
		}
		var tasks []Task
		for i, blk := range lookup.Blocks {
			tasks = append(tasks, Task{
				TaskID: i,
				Kernel: spec.Kernel,
				Args:   spec.Args,
				Block:  blk,
			})
		}
		if len(tasks) == 0 {
			return nil, fmt.Errorf("netmr: input %q has no blocks", spec.Input)
		}
		return tasks, nil
	}
	if spec.Samples <= 0 {
		return nil, fmt.Errorf("netmr: job %q has neither input nor samples", spec.Name)
	}
	seed := spec.Seed
	if seed == 0 {
		seed = 2009
	}
	// The canonical decomposition (kernels.SplitSamples) is shared
	// with the engine layer so Pi results agree across backends.
	var tasks []Task
	for i, split := range kernels.SplitSamples(spec.Samples, spec.NumTasks, seed) {
		tasks = append(tasks, Task{
			TaskID:  i,
			Kernel:  spec.Kernel,
			Args:    spec.Args,
			Samples: split.Samples,
			Seed:    split.Seed,
		})
	}
	return tasks, nil
}

func (jt *JobTracker) handleHeartbeat(body []byte) (any, error) {
	var args HeartbeatArgs
	if err := rpcnet.Unmarshal(body, &args); err != nil {
		return nil, err
	}
	jt.mu.Lock()
	defer jt.mu.Unlock()
	// Record completions; the board keeps the first finished attempt
	// of each task and discards late duplicates (speculative or
	// re-issued after a lease expiry).
	for _, res := range args.Completed {
		rec, ok := jt.jobs[res.JobID]
		if !ok || res.TaskID < 0 || res.TaskID >= len(rec.tasks) {
			continue
		}
		if rec.board.Complete(res.TaskID, args.TrackerID) {
			rec.outputs[res.TaskID] = res.Output
			rec.completed++
		}
	}
	// Finish jobs whose tasks are all done.
	for _, rec := range jt.jobs {
		if rec.done || rec.completed < len(rec.tasks) {
			continue
		}
		kern, err := lookupKernel(rec.spec.Kernel)
		if err != nil {
			return nil, err
		}
		result, err := kern.Reduce(rec.outputs)
		if err != nil {
			return nil, fmt.Errorf("netmr: reduce job %d: %w", rec.id, err)
		}
		rec.result = result
		rec.done = true
	}
	// Hand out work, oldest jobs first. Each board grants data-local
	// tasks first (block on the tracker's co-located DataNode — the
	// paper's "tries to minimize the number of remote block
	// accesses"), then any pending task. Only when every job's pending
	// work is exhausted do the remaining slots fill with speculative
	// duplicates of the longest-running in-flight tasks, again oldest
	// job first — speculation is what idle capacity does, never what
	// starves a younger job's real work.
	var reply HeartbeatReply
	now := time.Now()
	eachJob := func(fn func(rec *jobRecord)) {
		for id := int64(0); id < jt.nextJob && len(reply.Tasks) < args.FreeSlots; id++ {
			if rec, ok := jt.jobs[id]; ok && !rec.done {
				fn(rec)
			}
		}
	}
	eachJob(func(rec *jobRecord) {
		var local func(int) bool
		if args.LocalDataNode != "" {
			local = func(i int) bool { return rec.tasks[i].Block.Addr == args.LocalDataNode }
		}
		for _, i := range rec.board.Assign(args.TrackerID, args.FreeSlots-len(reply.Tasks), now, local) {
			reply.Tasks = append(reply.Tasks, rec.tasks[i])
		}
	})
	eachJob(func(rec *jobRecord) {
		for _, i := range rec.board.Speculate(args.TrackerID, args.FreeSlots-len(reply.Tasks), now) {
			reply.Tasks = append(reply.Tasks, rec.tasks[i])
		}
	})
	return reply, nil
}

func (jt *JobTracker) handleStatus(body []byte) (any, error) {
	var args StatusArgs
	if err := rpcnet.Unmarshal(body, &args); err != nil {
		return nil, err
	}
	jt.mu.Lock()
	defer jt.mu.Unlock()
	rec, ok := jt.jobs[args.JobID]
	if !ok {
		return nil, fmt.Errorf("netmr: unknown job %d", args.JobID)
	}
	return StatusReply{
		Done:      rec.done,
		Completed: rec.completed,
		Total:     len(rec.tasks),
		Result:    rec.result,
		Attempts:  rec.board.Attempts(),
		Counts:    rec.board.Counts(),
	}, nil
}
