package netmr

import (
	"bytes"
	"errors"
	"fmt"
	"slices"
	"sort"
	"sync"
	"time"

	"hetmr/internal/kernels"
	"hetmr/internal/metrics"
	"hetmr/internal/rpcnet"
	"hetmr/internal/sched"
)

// ErrQuotaExceeded is the typed admission-control rejection: a Submit
// that would push its tenant past a configured quota (concurrent jobs
// or spill budget) fails with an error wrapping this sentinel, both at
// the JobTracker handler and — rewrapped across the RPC boundary — at
// Client.Submit.
var ErrQuotaExceeded = errors.New("netmr: tenant quota exceeded")

// jobRecord is one submitted job: its task specs plus the dynamic
// scheduler's boards tracking leases, attempts and completions — one
// board for the map phase, and on the distributed-shuffle path a
// second for the reduce phase, whose tasks become assignable once
// every map partition is in place.
type jobRecord struct {
	id      int64
	tenant  string
	spec    JobSpec
	kern    MapKernel
	shuffle bool // distributed shuffle/reduce plane on
	// streamOut: final-phase outputs stay in the worker trackers'
	// shuffle stores; outLoc records each piece's address, Status
	// serves the refs, and the stores free them only after the client
	// Releases the job.
	streamOut bool
	outLoc    []string
	released  bool
	// queued: admitted into the tenant's over-quota queue, holding a
	// job ID but no scheduler state until quota frees up and the job
	// promotes to the tenant's active list.
	queued bool

	maps     []Task
	mapBoard *sched.Board
	mapOut   [][]byte // centralized path: map outputs
	mapLoc   []string // shuffle path: shuffle-store addr per map task
	mapDone  int
	// mapPartBytes records each winning map attempt's per-partition
	// stored sizes (TaskResult.PartBytes); once every map is done they
	// drive the LPT reduce order and the redHome locality hints.
	mapPartBytes [][]int64
	// redHome is, per reduce partition, the shuffle address holding the
	// most of its bytes — the reduce-grant locality hint. Nil until
	// every map partition (with size data) is in place.
	redHome []string

	reduces  []Task // shuffle path: reduce task templates, TaskID = partition
	redBoard *sched.Board
	redOut   [][]byte
	redDone  int
	// fetchFails counts distinct reduce-fetch failure reports per
	// shuffle-store address; a store is declared lost (its map tasks
	// reopened) only at fetchFailThreshold, so one transient dial
	// error never discards finished map work.
	fetchFails map[string]int

	finalizing bool
	done       bool
	failed     string
	result     []byte
}

// phaseOutputsReady reports whether the job's last phase has every
// output in hand. Callers hold jt.mu.
func (rec *jobRecord) phaseOutputsReady() ([][]byte, bool) {
	if rec.shuffle {
		return rec.redOut, rec.redDone == len(rec.reduces)
	}
	return rec.mapOut, rec.mapDone == len(rec.maps)
}

// reduceTask materializes reduce task p with the current map output
// locations. Callers hold jt.mu and guarantee every map is done.
func (rec *jobRecord) reduceTask(p int) Task {
	t := rec.reduces[p]
	t.Inputs = make([]MapOutputRef, len(rec.maps))
	for i, addr := range rec.mapLoc {
		t.Inputs[i] = MapOutputRef{MapTask: i, Part: p, Addr: addr}
	}
	return t
}

// JobTracker is the TCP master daemon: it expands jobs into tasks and
// serves them to TaskTrackers over heartbeats through the shared
// dynamic scheduler (internal/sched.Board) — pull-based leases with
// locality preference, re-issue of tasks whose lease expires (tracker
// failure) or whose attempt reports an error (fast failure path), and
// optional speculative duplication of the longest-running in-flight
// task when a tracker has idle slots, first finished attempt winning.
//
// The JobTracker is a pure control plane: on the distributed-shuffle
// path map output bytes stay in the mapper trackers' shuffle stores
// and heartbeats carry partition locations, not data. Only the final
// reduce outputs (and centralized-path map outputs) cross it;
// DataPlaneBytes meters exactly that traffic.
type JobTracker struct {
	srv    *rpcnet.Server
	nnAddr string
	// TaskLease is how long an assigned task may stay silent before it
	// is handed to another tracker. Read at job submission; set it (and
	// the scheduling knobs below) before submitting jobs.
	TaskLease time.Duration
	// Speculative enables speculative duplicates for subsequently
	// submitted jobs; MaxAttempts caps per-task attempts (0: the
	// scheduler default).
	Speculative bool
	MaxAttempts int
	// DeadAfter is how long a tracker may stay silent before the
	// liveness sweep declares it dead and proactively reopens the map
	// outputs recorded at its shuffle store — the authoritative
	// promotion of the read-side fetch-failure path. Zero disables the
	// sweep (leases and fetch failures still recover, just lazily).
	// Set before trackers heartbeat.
	DeadAfter time.Duration

	mu        sync.Mutex
	nextJob   int64
	jobs      map[int64]*jobRecord
	tenants   map[string]*tenantState
	fair      *sched.FairShare
	trackers  map[string]*trackerState   // membership view, keyed by tracker ID
	devices   map[string]string          // tracker ID -> device kind, from heartbeats
	held      map[string]map[int64]int64 // tracker ID -> job -> resident store bytes
	dataBytes int64                      // task output bytes carried by heartbeats

	stop chan struct{}
	done chan struct{}
}

// trackerState is one TaskTracker's row in the JobTracker's membership
// view, built entirely from heartbeats: the first beat registers the
// tracker, later ones refresh liveness, and a beat after a declared
// death rejoins it cleanly.
type trackerState struct {
	id          string
	rack        string
	device      string
	localDN     string
	shuffleAddr string
	lastSeen    time.Time
	draining    bool
	dead        bool
}

func (t *trackerState) state() string {
	switch {
	case t.dead:
		return NodeDead
	case t.draining:
		return NodeDraining
	default:
		return NodeAlive
	}
}

// tenantState is one tenant's slice of the multi-tenant service: its
// quota, its active (non-terminal) jobs in submission order, an
// admission queue of over-quota submissions waiting to promote, and a
// cumulative grant counter for fair-share observability.
type tenantState struct {
	quota   Quota
	jobs    []int64 // active job IDs, oldest first
	queue   []int64 // queued (over-quota) job IDs, oldest first
	granted int64   // cumulative task grants (incl. speculative)
}

// TenantStat is one tenant's scheduling and accounting view, as
// reported by TenantStats.
type TenantStat struct {
	Weight     float64 // fair-share weight (>= 1 nominal unit)
	ActiveJobs int     // jobs submitted and not yet terminal
	Granted    int64   // cumulative task grants across all heartbeats
	HeldBytes  int64   // resident shuffle/spill bytes across trackers
}

// StartJobTracker launches the JobTracker on addr.
func StartJobTracker(addr, nameNodeAddr string) (*JobTracker, error) {
	srv, err := rpcnet.NewServer(addr)
	if err != nil {
		return nil, err
	}
	jt := &JobTracker{
		srv:       srv,
		nnAddr:    nameNodeAddr,
		TaskLease: 10 * time.Second,
		jobs:      make(map[int64]*jobRecord),
		tenants:   make(map[string]*tenantState),
		fair:      sched.NewFairShare(),
		trackers:  make(map[string]*trackerState),
		devices:   make(map[string]string),
		held:      make(map[string]map[int64]int64),
		stop:      make(chan struct{}),
		done:      make(chan struct{}),
	}
	srv.Handle("Submit", jt.handleSubmit)
	srv.Handle("Heartbeat", jt.handleHeartbeat)
	srv.Handle("Status", jt.handleStatus)
	srv.Handle("Release", jt.handleRelease)
	srv.Handle("Kill", jt.handleKill)
	srv.Handle("ListJobs", jt.handleListJobs)
	srv.Handle("DecommissionTracker", jt.handleDecommissionTracker)
	srv.Handle("ListTrackers", jt.handleListTrackers)
	go jt.sweep()
	return jt, nil
}

// sweep is the tracker-liveness loop: when DeadAfter is set, trackers
// that miss it are declared dead and the map outputs their shuffle
// stores held are reopened immediately — the lost-work recovery that
// previously waited for a reducer's repeated fetch failures now runs
// from the authoritative membership view. Pure in-memory state: no RPC
// under (or outside) the lock.
func (jt *JobTracker) sweep() {
	defer close(jt.done)
	ticker := time.NewTicker(sweepInterval)
	defer ticker.Stop()
	for {
		select {
		case <-jt.stop:
			return
		case <-ticker.C:
		}
		jt.mu.Lock()
		if jt.DeadAfter > 0 {
			now := time.Now()
			for _, t := range jt.trackers {
				if !t.dead && now.Sub(t.lastSeen) > jt.DeadAfter {
					t.dead = true
					jt.reopenLostOutputs(t.shuffleAddr)
				}
			}
		}
		jt.mu.Unlock()
	}
}

// reopenLostOutputs reopens every unfinished job's tasks whose stored
// output lived at the dead tracker's shuffle address: shuffle-path map
// outputs and streamed final-phase pieces alike are recomputed
// elsewhere. Callers hold jt.mu.
func (jt *JobTracker) reopenLostOutputs(shuffleAddr string) {
	if shuffleAddr == "" {
		return
	}
	for _, rec := range jt.jobs {
		if rec.done || rec.finalizing {
			continue
		}
		for i, loc := range rec.mapLoc {
			if loc == shuffleAddr {
				rec.mapBoard.Reopen(i)
				rec.mapLoc[i] = ""
				rec.mapPartBytes[i] = nil
				rec.mapDone--
				rec.unplanReduces()
			}
		}
		if !rec.streamOut {
			continue
		}
		for i, loc := range rec.outLoc {
			if loc != shuffleAddr {
				continue
			}
			if rec.shuffle {
				rec.redBoard.Reopen(i)
				rec.redDone--
			} else {
				rec.mapBoard.Reopen(i)
				rec.mapDone--
			}
			rec.outLoc[i] = ""
		}
	}
}

// SetQuota installs (or replaces) tenant's quota and fair-share
// weight. Call any time; new limits apply to subsequent Submits and
// grant passes. The zero Quota means unlimited at weight 1.
func (jt *JobTracker) SetQuota(tenant string, q Quota) {
	if tenant == "" {
		tenant = DefaultTenant
	}
	jt.mu.Lock()
	defer jt.mu.Unlock()
	jt.tenant(tenant).quota = q
	jt.fair.SetWeight(tenant, q.Weight)
	// A raised limit may open headroom for queued submissions.
	jt.promote(tenant)
}

// tenant returns tenant's state, creating it on first sight. Callers
// hold jt.mu.
func (jt *JobTracker) tenant(name string) *tenantState {
	ts := jt.tenants[name]
	if ts == nil {
		ts = &tenantState{}
		jt.tenants[name] = ts
		jt.fair.SetWeight(name, 1)
	}
	return ts
}

// TenantStats reports every known tenant's scheduling and accounting
// state — the observability hook the fair-share and quota tests (and a
// service operator) read.
func (jt *JobTracker) TenantStats() map[string]TenantStat {
	jt.mu.Lock()
	defer jt.mu.Unlock()
	out := make(map[string]TenantStat, len(jt.tenants))
	for name, ts := range jt.tenants {
		out[name] = TenantStat{
			Weight:     jt.fair.Weight(name),
			ActiveJobs: len(ts.jobs),
			Granted:    ts.granted,
			HeldBytes:  jt.tenantHeldBytes(name),
		}
	}
	return out
}

// tenantHeldBytes sums the resident store bytes trackers reported for
// tenant's jobs — the figure a SpillBytes quota bounds. Callers hold
// jt.mu.
func (jt *JobTracker) tenantHeldBytes(name string) int64 {
	var total int64
	for _, byJob := range jt.held {
		for id, n := range byJob {
			if rec, ok := jt.jobs[id]; ok && rec.tenant == name {
				total += n
			}
		}
	}
	return total
}

// terminate marks rec terminal and deregisters it from its tenant's
// active (and admission-queue) lists; freed quota promotes queued
// submissions, and an emptied tenant resets its fair-share deficit
// (the DRR empty-queue rule). rec.failed / rec.result must already
// reflect the outcome. Callers hold jt.mu.
func (jt *JobTracker) terminate(rec *jobRecord) {
	rec.done = true
	ts := jt.tenants[rec.tenant]
	if ts == nil {
		return
	}
	ts.jobs = slices.DeleteFunc(ts.jobs, func(id int64) bool { return id == rec.id })
	ts.queue = slices.DeleteFunc(ts.queue, func(id int64) bool { return id == rec.id })
	jt.promote(rec.tenant)
	if len(ts.jobs) == 0 {
		jt.fair.Idle(rec.tenant)
	}
}

// promote moves tenant's queued submissions to its active list, oldest
// first, while quota headroom lasts. Callers hold jt.mu.
func (jt *JobTracker) promote(tenant string) {
	ts := jt.tenants[tenant]
	if ts == nil {
		return
	}
	for len(ts.queue) > 0 {
		if ts.quota.MaxJobs > 0 && len(ts.jobs) >= ts.quota.MaxJobs {
			return
		}
		if ts.quota.SpillBytes > 0 && jt.tenantHeldBytes(tenant) >= ts.quota.SpillBytes {
			return
		}
		id := ts.queue[0]
		ts.queue = ts.queue[1:]
		rec := jt.jobs[id]
		if rec == nil || rec.done {
			continue
		}
		rec.queued = false
		ts.jobs = append(ts.jobs, id)
	}
}

// promoteAll runs promote for every tenant with a non-empty queue —
// the heartbeat-time check that freed spill budget admits waiting
// jobs. Callers hold jt.mu.
func (jt *JobTracker) promoteAll() {
	for name, ts := range jt.tenants {
		if len(ts.queue) > 0 {
			jt.promote(name)
		}
	}
}

// Addr returns the JobTracker's RPC address.
func (jt *JobTracker) Addr() string { return jt.srv.Addr() }

// Close stops the liveness sweep and the server.
func (jt *JobTracker) Close() error {
	jt.mu.Lock()
	select {
	case <-jt.stop:
	default:
		close(jt.stop)
	}
	jt.mu.Unlock()
	<-jt.done
	return jt.srv.Close()
}

// handleDecommissionTracker starts a tracker's graceful retirement:
// its next heartbeats carry Drain, so it takes no new work, finishes
// what runs, and keeps serving held shuffle state until the jobs using
// it purge. The tracker reports drain completion through its Drained
// channel (in-process) or simply by going silent once empty.
func (jt *JobTracker) handleDecommissionTracker(body []byte) (any, error) {
	var args DecommissionTrackerArgs
	if err := rpcnet.Unmarshal(body, &args); err != nil {
		return nil, err
	}
	if err := jt.DecommissionTracker(args.TrackerID); err != nil {
		return nil, err
	}
	return DecommissionTrackerReply{}, nil
}

// DecommissionTracker is the in-process form of the
// DecommissionTracker RPC: marks the tracker draining.
func (jt *JobTracker) DecommissionTracker(id string) error {
	jt.mu.Lock()
	defer jt.mu.Unlock()
	t := jt.trackers[id]
	if t == nil {
		return fmt.Errorf("netmr: unknown tracker %q", id)
	}
	t.draining = true
	return nil
}

// handleListTrackers reports the membership view, sorted by ID.
func (jt *JobTracker) handleListTrackers(body []byte) (any, error) {
	jt.mu.Lock()
	defer jt.mu.Unlock()
	ids := make([]string, 0, len(jt.trackers))
	for id := range jt.trackers {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	var reply ListTrackersReply
	for _, id := range ids {
		t := jt.trackers[id]
		reply.Trackers = append(reply.Trackers, TrackerInfo{
			ID: t.id, Rack: t.rack, Device: t.device, State: t.state(),
		})
	}
	return reply, nil
}

// Trackers reports the membership view (the in-process form of the
// ListTrackers RPC), sorted by ID.
func (jt *JobTracker) Trackers() []TrackerInfo {
	reply, _ := jt.handleListTrackers(nil)
	return reply.(ListTrackersReply).Trackers
}

// DataPlaneBytes reports how many winning task output bytes heartbeats
// have delivered to the JobTracker (late duplicates and redelivered
// reports excluded) — the shuffle benchmark's proof that the
// distributed path moved the map outputs off the master.
func (jt *JobTracker) DataPlaneBytes() int64 {
	jt.mu.Lock()
	defer jt.mu.Unlock()
	return jt.dataBytes
}

func (jt *JobTracker) handleSubmit(body []byte) (any, error) {
	var args SubmitArgs
	if err := rpcnet.Unmarshal(body, &args); err != nil {
		return nil, err
	}
	kern, err := lookupKernel(args.Spec.Kernel)
	if err != nil {
		return nil, err
	}
	// API-boundary validation: a negative reduce count would otherwise
	// surface as a partition-hash divide-by-zero deep inside a mapper.
	if args.Spec.NumReducers < 0 {
		return nil, fmt.Errorf("netmr: job %q: NumReducers must be >= 0, got %d",
			args.Spec.Name, args.Spec.NumReducers)
	}
	// Range partitioning: exactly NumReducers-1 sorted split keys, or
	// none at all (hash partitioning). A mismatch caught here would
	// otherwise surface as a per-mapper partition-count error after the
	// job already holds scheduler state.
	if n := len(args.Spec.SplitKeys); n > 0 {
		if n != args.Spec.NumReducers-1 {
			return nil, fmt.Errorf("netmr: job %q: %d split keys for %d reducers (want NumReducers-1)",
				args.Spec.Name, n, args.Spec.NumReducers)
		}
		for i := 1; i < n; i++ {
			if bytes.Compare(args.Spec.SplitKeys[i-1], args.Spec.SplitKeys[i]) > 0 {
				return nil, fmt.Errorf("netmr: job %q: split keys are not sorted", args.Spec.Name)
			}
		}
	}
	mapper := args.Spec.Mapper
	if mapper == "" {
		mapper = MapperCell
	}
	if mapper != MapperCell && mapper != MapperJava {
		return nil, fmt.Errorf("netmr: job %q: unknown mapper variant %q (%s|%s)",
			args.Spec.Name, args.Spec.Mapper, MapperCell, MapperJava)
	}
	tasks, err := jt.expand(args.Spec)
	if err != nil {
		return nil, err
	}
	opts := sched.Options{Speculative: jt.Speculative, MaxAttempts: jt.MaxAttempts}
	// Map tasks prefer accelerated trackers when the job offloads;
	// reduce tasks are host merges either way. The affinity steers the
	// grant order only — mismatched trackers still take the work before
	// idling.
	mapOpts := opts
	mapOpts.Affinity = DeviceHost
	if mapper == MapperCell {
		mapOpts.Affinity = DeviceCell
	}
	redOpts := opts
	redOpts.Affinity = DeviceHost
	tenant := args.Spec.Tenant
	if tenant == "" {
		tenant = DefaultTenant
	}
	jt.mu.Lock()
	defer jt.mu.Unlock()
	// Admission control: a Submit that would push the tenant past its
	// concurrent-job or spill-budget quota queues behind the running
	// jobs when the tenant opted into a wait line (Quota.MaxQueued > 0)
	// with room left, and is otherwise rejected before any state is
	// allocated, with an error wrapping ErrQuotaExceeded.
	ts := jt.tenant(tenant)
	queued := false
	overJobs := ts.quota.MaxJobs > 0 && len(ts.jobs) >= ts.quota.MaxJobs
	held := jt.tenantHeldBytes(tenant)
	overSpill := ts.quota.SpillBytes > 0 && held >= ts.quota.SpillBytes
	if overJobs || overSpill {
		if ts.quota.MaxQueued > 0 && len(ts.queue) < ts.quota.MaxQueued {
			queued = true
		} else if overJobs {
			metrics.QuotaRejections.Add(1)
			return nil, fmt.Errorf("%w: tenant %q already runs %d of %d jobs",
				ErrQuotaExceeded, tenant, len(ts.jobs), ts.quota.MaxJobs)
		} else {
			metrics.QuotaRejections.Add(1)
			return nil, fmt.Errorf("%w: tenant %q holds %d of %d spill-budget bytes",
				ErrQuotaExceeded, tenant, held, ts.quota.SpillBytes)
		}
	}
	mapBoard, err := sched.NewBoard(len(tasks), jt.TaskLease, mapOpts)
	if err != nil {
		return nil, err
	}
	id := jt.nextJob
	jt.nextJob++
	rec := &jobRecord{
		id:     id,
		tenant: tenant,
		spec:   args.Spec,
		kern:   kern,
		maps:   make([]Task, 0, len(tasks)),
		mapOut: make([][]byte, len(tasks)),
	}
	rec.mapBoard = mapBoard
	rec.shuffle = args.Spec.NumReducers > 0 && args.Spec.Input != "" &&
		kern.Partition != nil && kern.Merge != nil
	// Streamed results apply to data jobs only: compute jobs (pi)
	// reduce to a handful of bytes that ride the heartbeat anyway.
	rec.streamOut = args.Spec.StreamOutput && args.Spec.Input != ""
	for _, t := range tasks {
		t.JobID = id
		t.Mapper = mapper
		if rec.shuffle {
			t.NumParts = args.Spec.NumReducers
			t.SplitKeys = args.Spec.SplitKeys
		} else if rec.streamOut {
			t.StreamOutput = true
		}
		rec.maps = append(rec.maps, t)
	}
	if rec.streamOut && !rec.shuffle {
		rec.outLoc = make([]string, len(rec.maps))
	}
	if rec.shuffle {
		r := args.Spec.NumReducers
		rec.redBoard, err = sched.NewBoard(r, jt.TaskLease, redOpts)
		if err != nil {
			return nil, err
		}
		rec.redOut = make([][]byte, r)
		rec.mapLoc = make([]string, len(tasks))
		rec.mapPartBytes = make([][]int64, len(tasks))
		rec.fetchFails = make(map[string]int)
		for p := 0; p < r; p++ {
			rec.reduces = append(rec.reduces, Task{
				JobID:        id,
				TaskID:       p,
				Kernel:       args.Spec.Kernel,
				Args:         args.Spec.Args,
				Reduce:       true,
				Mapper:       mapper,
				StreamOutput: rec.streamOut,
			})
		}
		if rec.streamOut {
			rec.outLoc = make([]string, r)
		}
	}
	jt.jobs[id] = rec
	if queued {
		rec.queued = true
		ts.queue = append(ts.queue, id)
	} else {
		ts.jobs = append(ts.jobs, id)
	}
	return SubmitReply{JobID: id}, nil
}

// expand turns a job spec into map tasks: one per input block for data
// jobs, NumTasks equal shares for compute jobs.
func (jt *JobTracker) expand(spec JobSpec) ([]Task, error) {
	if spec.Input != "" {
		nnc, err := rpcnet.Dial(jt.nnAddr)
		if err != nil {
			return nil, err
		}
		defer nnc.Close()
		var lookup LookupReply
		if err := nnc.Call("Lookup", LookupArgs{File: spec.Input}, &lookup); err != nil {
			return nil, err
		}
		var tasks []Task
		for i, blk := range lookup.Blocks {
			tasks = append(tasks, Task{
				TaskID: i,
				Kernel: spec.Kernel,
				Args:   spec.Args,
				Block:  blk,
			})
		}
		if len(tasks) == 0 {
			return nil, fmt.Errorf("netmr: input %q has no blocks", spec.Input)
		}
		return tasks, nil
	}
	if spec.Samples <= 0 {
		return nil, fmt.Errorf("netmr: job %q has neither input nor samples", spec.Name)
	}
	seed := spec.Seed
	if seed == 0 {
		seed = 2009
	}
	// The canonical decomposition (kernels.SplitSamples) is shared
	// with the engine layer so Pi results agree across backends.
	var tasks []Task
	for i, split := range kernels.SplitSamples(spec.Samples, spec.NumTasks, seed) {
		tasks = append(tasks, Task{
			TaskID:  i,
			Kernel:  spec.Kernel,
			Args:    spec.Args,
			Samples: split.Samples,
			Seed:    split.Seed,
		})
	}
	return tasks, nil
}

func (jt *JobTracker) handleHeartbeat(body []byte) (any, error) {
	var args HeartbeatArgs
	if err := rpcnet.Unmarshal(body, &args); err != nil {
		return nil, err
	}
	jt.mu.Lock()
	defer jt.mu.Unlock()
	// Track the cluster's device profile (trackers started before the
	// Device field default to host).
	device := args.Device
	if device == "" {
		device = DeviceHost
	}
	jt.devices[args.TrackerID] = device
	// Membership: the first heartbeat registers the tracker, every one
	// refreshes its liveness — a tracker declared dead rejoins cleanly
	// here (same ID, fresh lease history).
	t := jt.trackers[args.TrackerID]
	if t == nil {
		t = &trackerState{id: args.TrackerID}
		jt.trackers[args.TrackerID] = t
	}
	t.rack = args.Rack
	t.device = device
	t.localDN = args.LocalDataNode
	if args.ShuffleAddr != "" {
		t.shuffleAddr = args.ShuffleAddr
	}
	t.lastSeen = time.Now()
	t.dead = false
	// Refresh the tracker's resident-bytes report; per-tenant sums of
	// these feed SpillBytes quota checks at Submit, so freed bytes may
	// promote queued jobs.
	if len(args.HeldBytes) > 0 {
		jt.held[args.TrackerID] = args.HeldBytes
	} else {
		delete(jt.held, args.TrackerID)
	}
	jt.promoteAll()
	// Record completions and failures. The boards keep the first
	// finished attempt of each task and discard late duplicates
	// (speculative or re-issued after a lease expiry); reported
	// failures free the task for immediate re-issue instead of
	// waiting out the lease.
	for _, res := range args.Completed {
		rec, ok := jt.jobs[res.JobID]
		if !ok || rec.done || rec.finalizing {
			continue
		}
		jt.recordResult(rec, args.TrackerID, res)
	}
	// Kick off finalization for jobs whose last phase just completed.
	// The kernel's Reduce runs outside jt.mu (it may be arbitrarily
	// expensive), and its error becomes the job's terminal error in
	// StatusReply instead of leaking to an arbitrary heartbeating
	// tracker. Streamed-output jobs skip the fold entirely: their
	// result is the set of stored pieces, already in place.
	for _, rec := range jt.jobs {
		if rec.done || rec.finalizing || rec.failed != "" {
			continue
		}
		if outputs, ready := rec.phaseOutputsReady(); ready {
			if rec.streamOut {
				jt.terminate(rec)
				continue
			}
			rec.finalizing = true
			go jt.finalize(rec, outputs)
		}
	}
	// Hand out work slot by slot under weighted deficit round-robin
	// across tenants. Each free slot picks the eligible tenant with the
	// largest fair-share deficit (credit accrues in proportion to
	// configured weight), then serves that tenant's oldest job with
	// work, preferring boards whose device affinity matches this
	// tracker — an accelerated job's map tasks land on accelerated
	// trackers while matching work remains, but a mismatched tracker
	// still takes work before idling (host trackers fall back to
	// accelerated tasks via the bit-identical host kernel). Within a
	// board, data-local map tasks go first (a replica on the tracker's
	// co-located DataNode — the paper's "tries to minimize the number
	// of remote block accesses"); reduce tasks join the pool once every
	// map partition is in place. A tenant with no grantable work drops
	// out of the round and resets its deficit (the DRR empty-queue
	// rule), so credit never accumulates while idle.
	//
	// Only when every tenant's pending work is exhausted do the
	// remaining slots fill with speculative duplicates of the
	// longest-running in-flight tasks, again arbitrated by deficit —
	// speculation is what idle capacity does, never what starves
	// another tenant's real work.
	var reply HeartbeatReply
	if t.draining {
		// A draining tracker gets no new work — only the drain order,
		// its purge list, and the courtesy of its reports being
		// recorded above.
		reply.Drain = true
		for _, id := range args.HeldJobs {
			rec, ok := jt.jobs[id]
			if !ok || (rec.done && (!rec.streamOut || rec.released || rec.failed != "")) {
				reply.PurgeJobs = append(reply.PurgeJobs, id)
			}
		}
		return reply, nil
	}
	now := time.Now()
	eligible := jt.eligibleTenants(args.TrackerID, now)
	for len(reply.Tasks) < args.FreeSlots && len(eligible) > 0 {
		name := jt.fair.Pick(eligible)
		task, ok := jt.grantPending(name, device, args, now)
		if !ok {
			jt.fair.Idle(name)
			eligible = slices.DeleteFunc(eligible, func(t string) bool { return t == name })
			continue
		}
		jt.fair.Charge(name)
		jt.tenants[name].granted++
		reply.Tasks = append(reply.Tasks, task)
	}
	eligible = jt.eligibleTenants(args.TrackerID, now)
	for len(reply.Tasks) < args.FreeSlots && len(eligible) > 0 {
		name := jt.fair.Pick(eligible)
		task, ok := jt.grantSpeculative(name, args, now)
		if !ok {
			// No Idle here: a tenant may have pending work gated on
			// map completion; speculation must not zero its credit.
			eligible = slices.DeleteFunc(eligible, func(t string) bool { return t == name })
			continue
		}
		jt.fair.Charge(name)
		jt.tenants[name].granted++
		reply.Tasks = append(reply.Tasks, task)
	}
	// Shuffle-store GC: name the held jobs that finished, so trackers
	// free their partitions. A streamed-output job's stores also hold
	// its results — those survive until the client Releases the job
	// (or the job fails terminally).
	for _, id := range args.HeldJobs {
		rec, ok := jt.jobs[id]
		if !ok || (rec.done && (!rec.streamOut || rec.released || rec.failed != "")) {
			reply.PurgeJobs = append(reply.PurgeJobs, id)
		}
	}
	return reply, nil
}

// eligibleTenants lists tenants the fair-share pass may serve on this
// heartbeat, sorted for determinism: those with active jobs, excluding
// any at its MaxTrackers cap unless trackerID already runs its work
// (granting there adds no tracker to the tenant's footprint). Callers
// hold jt.mu.
func (jt *JobTracker) eligibleTenants(trackerID string, now time.Time) []string {
	var out []string
	for name, ts := range jt.tenants {
		if len(ts.jobs) == 0 {
			continue
		}
		if ts.quota.MaxTrackers > 0 {
			live := jt.tenantLiveTrackers(ts, now)
			if _, mine := live[trackerID]; len(live) >= ts.quota.MaxTrackers && !mine {
				continue
			}
		}
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// tenantLiveTrackers is the set of trackers holding live (unexpired)
// attempts of ts's jobs, with attempt counts. Callers hold jt.mu.
func (jt *JobTracker) tenantLiveTrackers(ts *tenantState, now time.Time) map[string]int {
	out := make(map[string]int)
	for _, id := range ts.jobs {
		rec := jt.jobs[id]
		if rec == nil {
			continue
		}
		for w, n := range rec.mapBoard.LiveWorkers(now) {
			out[w] += n
		}
		if rec.redBoard != nil {
			for w, n := range rec.redBoard.LiveWorkers(now) {
				out[w] += n
			}
		}
	}
	return out
}

// grantPending hands out one pending task from tenant's oldest job
// with work: first from boards whose affinity matches this tracker's
// device, then from any board. Callers hold jt.mu.
func (jt *JobTracker) grantPending(tenant, device string, args HeartbeatArgs, now time.Time) (Task, bool) {
	ts := jt.tenants[tenant]
	for _, affinityOnly := range []bool{true, false} {
		for _, id := range ts.jobs {
			rec := jt.jobs[id]
			if rec == nil || rec.done || rec.finalizing {
				continue
			}
			if t, ok := jt.grantFromJob(rec, device, args, now, affinityOnly); ok {
				return t, true
			}
		}
	}
	return Task{}, false
}

// grantFromJob tries to assign one of rec's pending tasks to the
// heartbeating tracker, honouring data locality on the map board:
// node-local tasks (a replica on the tracker's co-located DataNode)
// first, then rack-local ones (a replica on the tracker's rack), then
// remote — the paper's "minimize the number of remote block accesses"
// extended one topology tier. With affinityOnly set only boards
// matching the tracker's device are considered. Callers hold jt.mu.
func (jt *JobTracker) grantFromJob(rec *jobRecord, device string, args HeartbeatArgs, now time.Time, affinityOnly bool) (Task, bool) {
	if !affinityOnly || rec.mapBoard.Affinity() == device {
		var locality func(int) sched.Locality
		if args.LocalDataNode != "" || args.Rack != "" {
			locality = func(i int) sched.Locality {
				blk := rec.maps[i].Block
				if blk.Addr == "" {
					return sched.LocalityRemote // compute task: indifferent
				}
				if args.LocalDataNode != "" && slices.Contains(blk.ReplicaAddrs(), args.LocalDataNode) {
					return sched.LocalityNode
				}
				if args.Rack != "" && len(blk.Racks) > 0 && blk.OnRack(args.Rack) {
					return sched.LocalityRack
				}
				return sched.LocalityRemote
			}
		}
		if is := rec.mapBoard.Assign(args.TrackerID, 1, now, locality); len(is) == 1 {
			return rec.maps[is[0]], true
		}
	}
	if rec.shuffle && rec.mapDone == len(rec.maps) &&
		(!affinityOnly || rec.redBoard.Affinity() == device) {
		// Reduce locality: prefer the partition whose bytes mostly live
		// in this tracker's own shuffle store — the heaviest fetch
		// stream becomes a local read instead of a network pull.
		var locality func(int) sched.Locality
		if args.ShuffleAddr != "" && rec.redHome != nil {
			locality = func(p int) sched.Locality {
				if rec.redHome[p] == args.ShuffleAddr {
					return sched.LocalityNode
				}
				return sched.LocalityRemote
			}
		}
		if ps := rec.redBoard.Assign(args.TrackerID, 1, now, locality); len(ps) == 1 {
			return rec.reduceTask(ps[0]), true
		}
	}
	return Task{}, false
}

// grantSpeculative hands out one speculative duplicate of tenant's
// longest-running in-flight task, oldest job first. Callers hold
// jt.mu.
func (jt *JobTracker) grantSpeculative(tenant string, args HeartbeatArgs, now time.Time) (Task, bool) {
	ts := jt.tenants[tenant]
	for _, id := range ts.jobs {
		rec := jt.jobs[id]
		if rec == nil || rec.done || rec.finalizing {
			continue
		}
		if is := rec.mapBoard.Speculate(args.TrackerID, 1, now); len(is) == 1 {
			return rec.maps[is[0]], true
		}
		if rec.shuffle && rec.mapDone == len(rec.maps) {
			if ps := rec.redBoard.Speculate(args.TrackerID, 1, now); len(ps) == 1 {
				return rec.reduceTask(ps[0]), true
			}
		}
	}
	return Task{}, false
}

// handleRelease marks a streamed-output job's results consumed:
// trackers free the stored pieces on their next heartbeat.
func (jt *JobTracker) handleRelease(body []byte) (any, error) {
	var args ReleaseArgs
	if err := rpcnet.Unmarshal(body, &args); err != nil {
		return nil, err
	}
	jt.mu.Lock()
	defer jt.mu.Unlock()
	rec, ok := jt.jobs[args.JobID]
	if !ok {
		return nil, fmt.Errorf("netmr: unknown job %d", args.JobID)
	}
	rec.released = true
	return ReleaseReply{}, nil
}

// handleKill terminates a job mid-flight: the record turns terminal
// with a killed error, in-flight attempts become late duplicates the
// boards discard, and the next heartbeats purge the job's shuffle
// stores, spill files and streamed outputs. Killing a finished job
// just releases its streamed outputs. A non-empty KillArgs.Tenant must
// match the job's tenant — one tenant cannot kill another's job.
func (jt *JobTracker) handleKill(body []byte) (any, error) {
	var args KillArgs
	if err := rpcnet.Unmarshal(body, &args); err != nil {
		return nil, err
	}
	jt.mu.Lock()
	defer jt.mu.Unlock()
	rec, ok := jt.jobs[args.JobID]
	if !ok {
		return nil, fmt.Errorf("netmr: unknown job %d", args.JobID)
	}
	if args.Tenant != "" && rec.tenant != args.Tenant {
		return nil, fmt.Errorf("netmr: job %d belongs to tenant %q", args.JobID, rec.tenant)
	}
	if rec.done {
		rec.released = true
		return KillReply{AlreadyDone: true}, nil
	}
	rec.failed = fmt.Sprintf("netmr: job %d killed", rec.id)
	rec.released = true
	jt.terminate(rec)
	metrics.JobsKilled.Add(1)
	return KillReply{}, nil
}

// handleListJobs lists jobs the tracker knows about — every tenant's,
// or one tenant's when the filter is set — in submission order.
func (jt *JobTracker) handleListJobs(body []byte) (any, error) {
	var args ListJobsArgs
	if err := rpcnet.Unmarshal(body, &args); err != nil {
		return nil, err
	}
	jt.mu.Lock()
	defer jt.mu.Unlock()
	var reply ListJobsReply
	for id := int64(0); id < jt.nextJob; id++ {
		rec, ok := jt.jobs[id]
		if !ok || (args.Tenant != "" && rec.tenant != args.Tenant) {
			continue
		}
		reply.Jobs = append(reply.Jobs, JobInfo{
			ID:        rec.id,
			Tenant:    rec.tenant,
			Name:      rec.spec.Name,
			Kernel:    rec.spec.Kernel,
			Done:      rec.done,
			Err:       rec.failed,
			Completed: rec.mapDone + rec.redDone,
			Total:     len(rec.maps) + len(rec.reduces),
		})
	}
	return reply, nil
}

// recordResult folds one task report into the job. Callers hold jt.mu.
func (jt *JobTracker) recordResult(rec *jobRecord, trackerID string, res TaskResult) {
	if res.Reduce {
		if !rec.shuffle || res.TaskID < 0 || res.TaskID >= len(rec.reduces) {
			return
		}
		if res.Err != "" {
			jt.failAttempt(rec, rec.redBoard, trackerID, res, "reduce")
			return
		}
		if rec.redBoard.Complete(res.TaskID, trackerID) {
			jt.addDataBytes(int64(len(res.Output)))
			if rec.streamOut {
				rec.outLoc[res.TaskID] = res.ShuffleAddr
			} else {
				rec.redOut[res.TaskID] = res.Output
			}
			rec.redDone++
			// This reduce fetched from every shuffle store, so any
			// accumulated transient-blame against them is stale.
			clear(rec.fetchFails)
		}
		return
	}
	if res.TaskID < 0 || res.TaskID >= len(rec.maps) {
		return
	}
	if res.Err != "" {
		jt.failAttempt(rec, rec.mapBoard, trackerID, res, "map")
		return
	}
	if rec.mapBoard.Complete(res.TaskID, trackerID) {
		jt.addDataBytes(int64(len(res.Output)))
		switch {
		case rec.shuffle:
			rec.mapLoc[res.TaskID] = res.ShuffleAddr
			rec.mapPartBytes[res.TaskID] = res.PartBytes
		case rec.streamOut:
			rec.outLoc[res.TaskID] = res.ShuffleAddr
		default:
			rec.mapOut[res.TaskID] = res.Output
		}
		rec.mapDone++
		if rec.shuffle && rec.mapDone == len(rec.maps) {
			rec.planReduces()
		}
	}
}

// planReduces installs the reduce-phase plan once every map partition
// is in place: the reduce board's scan order becomes heaviest-partition
// first (LPT — a skewed range starts immediately instead of
// serializing the tail), and redHome records, per partition, the
// shuffle address holding the most of its bytes — the locality hint
// grantFromJob serves reducers by, so the heaviest fetch stream is a
// local store read. Maps that reported no sizes (a pre-upgrade tracker)
// leave the board in index order. Callers hold jt.mu.
func (rec *jobRecord) planReduces() {
	r := len(rec.reduces)
	totals := make([]int64, r)
	homeBytes := make([]map[string]int64, r)
	for p := range homeBytes {
		homeBytes[p] = make(map[string]int64)
	}
	for m, parts := range rec.mapPartBytes {
		if len(parts) != r {
			return // incomplete size data: keep index order, no hints
		}
		for p, n := range parts {
			totals[p] += n
			homeBytes[p][rec.mapLoc[m]] += n
		}
	}
	order := make([]int, r)
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool { return totals[order[a]] > totals[order[b]] })
	rec.redBoard.SetOrder(order)
	rec.redHome = make([]string, r)
	for p := range rec.redHome {
		best, bestN := "", int64(-1)
		addrs := make([]string, 0, len(homeBytes[p]))
		for a := range homeBytes[p] {
			addrs = append(addrs, a)
		}
		sort.Strings(addrs) // deterministic tie-break
		for _, a := range addrs {
			if homeBytes[p][a] > bestN {
				best, bestN = a, homeBytes[p][a]
			}
		}
		rec.redHome[p] = best
	}
}

// unplanReduces drops a stale reduce plan after a map output is lost:
// the reopened maps will land somewhere else, so sizes and homes are
// recomputed when coverage is complete again. Callers hold jt.mu.
func (rec *jobRecord) unplanReduces() {
	if rec.redBoard != nil {
		rec.redBoard.SetOrder(nil)
	}
	rec.redHome = nil
}

// addDataBytes meters winning task output bytes that crossed the
// heartbeat channel — the JobTracker's local counter plus the shared
// process-wide meter. Callers hold jt.mu.
func (jt *JobTracker) addDataBytes(n int64) {
	jt.dataBytes += n
	metrics.DataPlaneBytes.Add(n)
}

// fetchFailThreshold is how many reduce-fetch failure reports an
// address accumulates before its map outputs are declared lost — one
// transient error re-issues only the reduce attempt, repeated ones
// trigger the shuffle re-run (Hadoop's repeated-notification rule).
const fetchFailThreshold = 2

// failAttempt handles a reported task failure, immediately freeing the
// task for re-issue. A reduce fetch failure (BadAddr set) is an
// infrastructure failure: it never spends the task's failure budget,
// and once fetchFailThreshold distinct reports blame one shuffle
// store, that store's map tasks reopen for the shuffle re-run. A
// genuine task error spends the budget, and exhausting it turns into
// the job's terminal error. Redelivered reports (heartbeats retry
// after lost replies) are ignored whole. Callers hold jt.mu.
func (jt *JobTracker) failAttempt(rec *jobRecord, board *sched.Board, trackerID string, res TaskResult, phase string) {
	if res.BadAddr != "" && rec.shuffle {
		if !board.Release(res.TaskID, trackerID) {
			return // duplicate or stale report: the attempt is already resolved
		}
		rec.fetchFails[res.BadAddr]++
		if rec.fetchFails[res.BadAddr] >= fetchFailThreshold {
			delete(rec.fetchFails, res.BadAddr)
			for i, loc := range rec.mapLoc {
				if loc == res.BadAddr {
					rec.mapBoard.Reopen(i)
					rec.mapLoc[i] = ""
					rec.mapPartBytes[i] = nil
					rec.mapDone--
					rec.unplanReduces()
				}
			}
		}
		return
	}
	dropped, exhausted := board.Fail(res.TaskID, trackerID)
	if !dropped {
		return // duplicate or stale report: the attempt is already resolved
	}
	if exhausted {
		rec.failed = fmt.Sprintf("netmr: %s task %d of job %d failed after max attempts: %s",
			phase, res.TaskID, rec.id, res.Err)
		jt.terminate(rec)
	}
}

// finalize folds the job's last-phase outputs into its result with the
// kernel's Reduce, outside jt.mu.
func (jt *JobTracker) finalize(rec *jobRecord, outputs [][]byte) {
	result, err := rec.kern.Reduce(outputs)
	jt.mu.Lock()
	defer jt.mu.Unlock()
	if rec.done {
		return // killed while finalizing: keep the terminal state
	}
	if err != nil {
		rec.failed = fmt.Sprintf("netmr: reduce job %d: %v", rec.id, err)
	} else {
		rec.result = result
	}
	jt.terminate(rec)
}

func (jt *JobTracker) handleStatus(body []byte) (any, error) {
	var args StatusArgs
	if err := rpcnet.Unmarshal(body, &args); err != nil {
		return nil, err
	}
	jt.mu.Lock()
	defer jt.mu.Unlock()
	rec, ok := jt.jobs[args.JobID]
	if !ok {
		return nil, fmt.Errorf("netmr: unknown job %d", args.JobID)
	}
	attempts := rec.mapBoard.Attempts()
	counts := rec.mapBoard.Counts()
	if rec.redBoard != nil {
		attempts += rec.redBoard.Attempts()
		for w, n := range rec.redBoard.Counts() {
			counts[w] += n
		}
	}
	// Copied under the lock: the reply is marshalled after the handler
	// returns, and heartbeats keep writing the device map.
	devices := make(map[string]string, len(jt.devices))
	for id, kind := range jt.devices {
		devices[id] = kind
	}
	// A finished streamed-output job's result is its list of stored
	// pieces, in task order.
	var outputs []MapOutputRef
	if rec.streamOut && rec.done && rec.failed == "" {
		raw := rec.kern.RawOutput != nil
		outputs = make([]MapOutputRef, len(rec.outLoc))
		for i, addr := range rec.outLoc {
			if rec.shuffle {
				outputs[i] = MapOutputRef{MapTask: -1, Part: i, Addr: addr, Raw: raw}
			} else {
				outputs[i] = MapOutputRef{MapTask: i, Part: -1, Addr: addr, Raw: raw}
			}
		}
	}
	return StatusReply{
		Done:      rec.done,
		Completed: rec.mapDone + rec.redDone,
		Total:     len(rec.maps) + len(rec.reduces),
		Result:    rec.result,
		Err:       rec.failed,
		Attempts:  attempts,
		Counts:    counts,
		Devices:   devices,
		Outputs:   outputs,
	}, nil
}
