package netmr

import (
	"fmt"
	"sync"
	"time"

	"hetmr/internal/kernels"
	"hetmr/internal/rpcnet"
)

// taskState tracks one task's lifecycle at the JobTracker.
type taskState struct {
	task       Task
	assignedTo string
	assignedAt time.Time
	done       bool
	output     []byte
}

// jobRecord is one submitted job.
type jobRecord struct {
	id        int64
	spec      JobSpec
	tasks     []*taskState
	completed int
	done      bool
	result    []byte
}

// JobTracker is the TCP master daemon: it expands jobs into tasks,
// assigns them on heartbeats, re-issues tasks whose lease expires
// (tracker failure), and reduces the results.
type JobTracker struct {
	srv    *rpcnet.Server
	nnAddr string
	// TaskLease is how long an assigned task may stay silent before
	// it is handed to another tracker.
	TaskLease time.Duration

	mu      sync.Mutex
	nextJob int64
	jobs    map[int64]*jobRecord
}

// StartJobTracker launches the JobTracker on addr.
func StartJobTracker(addr, nameNodeAddr string) (*JobTracker, error) {
	srv, err := rpcnet.NewServer(addr)
	if err != nil {
		return nil, err
	}
	jt := &JobTracker{
		srv:       srv,
		nnAddr:    nameNodeAddr,
		TaskLease: 10 * time.Second,
		jobs:      make(map[int64]*jobRecord),
	}
	srv.Handle("Submit", jt.handleSubmit)
	srv.Handle("Heartbeat", jt.handleHeartbeat)
	srv.Handle("Status", jt.handleStatus)
	return jt, nil
}

// Addr returns the JobTracker's RPC address.
func (jt *JobTracker) Addr() string { return jt.srv.Addr() }

// Close stops the server.
func (jt *JobTracker) Close() error { return jt.srv.Close() }

func (jt *JobTracker) handleSubmit(body []byte) (any, error) {
	var args SubmitArgs
	if err := rpcnet.Unmarshal(body, &args); err != nil {
		return nil, err
	}
	if _, err := lookupKernel(args.Spec.Kernel); err != nil {
		return nil, err
	}
	tasks, err := jt.expand(args.Spec)
	if err != nil {
		return nil, err
	}
	jt.mu.Lock()
	defer jt.mu.Unlock()
	id := jt.nextJob
	jt.nextJob++
	rec := &jobRecord{id: id, spec: args.Spec}
	for _, t := range tasks {
		t.JobID = id
		rec.tasks = append(rec.tasks, &taskState{task: t})
	}
	jt.jobs[id] = rec
	return SubmitReply{JobID: id}, nil
}

// expand turns a job spec into tasks: one per input block for data
// jobs, NumTasks equal shares for compute jobs.
func (jt *JobTracker) expand(spec JobSpec) ([]Task, error) {
	if spec.Input != "" {
		nnc, err := rpcnet.Dial(jt.nnAddr)
		if err != nil {
			return nil, err
		}
		defer nnc.Close()
		var lookup LookupReply
		if err := nnc.Call("Lookup", LookupArgs{File: spec.Input}, &lookup); err != nil {
			return nil, err
		}
		var tasks []Task
		for i, blk := range lookup.Blocks {
			tasks = append(tasks, Task{
				TaskID: i,
				Kernel: spec.Kernel,
				Args:   spec.Args,
				Block:  blk,
			})
		}
		if len(tasks) == 0 {
			return nil, fmt.Errorf("netmr: input %q has no blocks", spec.Input)
		}
		return tasks, nil
	}
	if spec.Samples <= 0 {
		return nil, fmt.Errorf("netmr: job %q has neither input nor samples", spec.Name)
	}
	seed := spec.Seed
	if seed == 0 {
		seed = 2009
	}
	// The canonical decomposition (kernels.SplitSamples) is shared
	// with the engine layer so Pi results agree across backends.
	var tasks []Task
	for i, split := range kernels.SplitSamples(spec.Samples, spec.NumTasks, seed) {
		tasks = append(tasks, Task{
			TaskID:  i,
			Kernel:  spec.Kernel,
			Args:    spec.Args,
			Samples: split.Samples,
			Seed:    split.Seed,
		})
	}
	return tasks, nil
}

func (jt *JobTracker) handleHeartbeat(body []byte) (any, error) {
	var args HeartbeatArgs
	if err := rpcnet.Unmarshal(body, &args); err != nil {
		return nil, err
	}
	jt.mu.Lock()
	defer jt.mu.Unlock()
	// Record completions.
	for _, res := range args.Completed {
		rec, ok := jt.jobs[res.JobID]
		if !ok || res.TaskID < 0 || res.TaskID >= len(rec.tasks) {
			continue
		}
		ts := rec.tasks[res.TaskID]
		if ts.done {
			continue // duplicate after re-issue: first result wins
		}
		ts.done = true
		ts.output = res.Output
		rec.completed++
	}
	// Finish jobs whose tasks are all done.
	for _, rec := range jt.jobs {
		if rec.done || rec.completed < len(rec.tasks) {
			continue
		}
		kern, err := lookupKernel(rec.spec.Kernel)
		if err != nil {
			return nil, err
		}
		partials := make([][]byte, len(rec.tasks))
		for i, ts := range rec.tasks {
			partials[i] = ts.output
		}
		result, err := kern.Reduce(partials)
		if err != nil {
			return nil, fmt.Errorf("netmr: reduce job %d: %w", rec.id, err)
		}
		rec.result = result
		rec.done = true
	}
	// Assign pending (or lease-expired) tasks, oldest jobs first.
	// Two passes per job: data-local tasks first (block on the
	// tracker's co-located DataNode), then any remaining task — the
	// paper's "tries to minimize the number of remote block accesses".
	var reply HeartbeatReply
	now := time.Now()
	assignable := func(ts *taskState) bool {
		if ts.done {
			return false
		}
		return ts.assignedTo == "" || now.Sub(ts.assignedAt) >= jt.TaskLease
	}
	grant := func(ts *taskState) {
		ts.assignedTo = args.TrackerID
		ts.assignedAt = now
		reply.Tasks = append(reply.Tasks, ts.task)
	}
	for id := int64(0); id < jt.nextJob && len(reply.Tasks) < args.FreeSlots; id++ {
		rec, ok := jt.jobs[id]
		if !ok || rec.done {
			continue
		}
		if args.LocalDataNode != "" {
			for _, ts := range rec.tasks {
				if len(reply.Tasks) >= args.FreeSlots {
					break
				}
				if assignable(ts) && ts.task.Block.Addr == args.LocalDataNode {
					grant(ts)
				}
			}
		}
		for _, ts := range rec.tasks {
			if len(reply.Tasks) >= args.FreeSlots {
				break
			}
			if assignable(ts) {
				grant(ts)
			}
		}
	}
	return reply, nil
}

func (jt *JobTracker) handleStatus(body []byte) (any, error) {
	var args StatusArgs
	if err := rpcnet.Unmarshal(body, &args); err != nil {
		return nil, err
	}
	jt.mu.Lock()
	defer jt.mu.Unlock()
	rec, ok := jt.jobs[args.JobID]
	if !ok {
		return nil, fmt.Errorf("netmr: unknown job %d", args.JobID)
	}
	return StatusReply{
		Done:      rec.done,
		Completed: rec.completed,
		Total:     len(rec.tasks),
		Result:    rec.result,
	}, nil
}
