package netmr

import (
	"bytes"
	"fmt"
	"testing"
	"time"

	"hetmr/internal/kernels"
	"hetmr/internal/rpcnet"
	"hetmr/internal/topo"
)

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, d time.Duration, cond func() bool, msg string) {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("condition not reached within %v: %s", d, msg)
}

// trackerState looks up one tracker's lifecycle state in the
// JobTracker's membership view ("" when unknown).
func trackerStateOf(jt *JobTracker, id string) string {
	for _, ti := range jt.Trackers() {
		if ti.ID == id {
			return ti.State
		}
	}
	return ""
}

// A worker pair added at runtime registers with both masters over its
// first heartbeats — no restart, no static wiring — and takes real
// work.
func TestAddWorkerJoinsAtRuntime(t *testing.T) {
	c, err := StartCluster(2, 2, 1024, 30*time.Millisecond, WithRacks(2))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Shutdown)

	dn, tt, err := c.AddWorker()
	if err != nil {
		t.Fatal(err)
	}
	// Worker 2 takes the next round-robin rack slot: 2 % 2 = rack 0.
	if got, want := tt.Rack(), topo.RackName(0); got != want {
		t.Errorf("new worker rack = %q, want %q", got, want)
	}
	waitFor(t, 5*time.Second, func() bool {
		return trackerStateOf(c.JT, tt.ID) == NodeAlive
	}, "new tracker never registered with the JobTracker")
	waitFor(t, 5*time.Second, func() bool {
		nodes, err := c.Client.ListDataNodes()
		if err != nil {
			return false
		}
		for _, d := range nodes {
			if d.Addr == dn.Addr() && d.State == NodeAlive {
				return true
			}
		}
		return false
	}, "new datanode never registered with the NameNode")

	// Enough tasks that every tracker, including the newcomer, wins
	// some.
	id, err := c.Client.Submit(JobSpec{Name: "elastic-pi", Kernel: "pi", Samples: 300000, NumTasks: 30})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Client.Wait(id, 15*time.Second); err != nil {
		t.Fatal(err)
	}
	st, err := c.Client.Status(id)
	if err != nil {
		t.Fatal(err)
	}
	if st.Counts[tt.ID] == 0 {
		t.Errorf("runtime-added tracker %s completed no tasks: counts = %v", tt.ID, st.Counts)
	}
}

// Decommissioning a worker mid-job drains it gracefully: in-flight
// tasks finish, lost replicas fail over, and the job's output is
// bit-identical to the sequential reference.
func TestDecommissionWorkerMidJobBitIdentical(t *testing.T) {
	c, err := StartCluster(3, 2, 512, 30*time.Millisecond, WithRacks(2),
		WithTrackerDelays([]time.Duration{10 * time.Millisecond, 10 * time.Millisecond, 10 * time.Millisecond}))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Shutdown)

	// Registration rides the first heartbeat: the drain below needs
	// worker 2 in the membership view before it can be asked to leave.
	waitFor(t, 5*time.Second, func() bool {
		return trackerStateOf(c.JT, "tracker-2") == NodeAlive
	}, "tracker-2 never registered")

	plain := make([]byte, 24*512)
	for i := range plain {
		plain[i] = byte(i * 13)
	}
	if err := c.Client.WriteFile("/drain-plain", plain, ""); err != nil {
		t.Fatal(err)
	}
	key := []byte("0123456789abcdef")
	iv := []byte("fedcba9876543210")
	args, err := rpcnet.Marshal(AESArgs{Key: key, IV: iv, BlockBytes: 512})
	if err != nil {
		t.Fatal(err)
	}
	id, err := c.Client.Submit(JobSpec{Name: "drain-enc", Kernel: "aes-ctr", Input: "/drain-plain", Args: args})
	if err != nil {
		t.Fatal(err)
	}
	// Retire worker 2 while the job is in flight: the drain must let
	// its running tasks finish and the DFS must re-home its replicas.
	if err := c.DecommissionWorker(2, 10*time.Second); err != nil {
		t.Fatal(err)
	}
	if got := len(c.TTs); got != 2 {
		t.Errorf("roster holds %d trackers after decommission, want 2", got)
	}
	result, err := c.Client.Wait(id, 15*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	var cipherText []byte
	if err := rpcnet.Unmarshal(result, &cipherText); err != nil {
		t.Fatal(err)
	}
	cip, _ := kernels.NewCipher(key)
	want := make([]byte, len(plain))
	kernels.CTRStream(cip, iv, 0, want, plain)
	if !bytes.Equal(cipherText, want) {
		t.Fatal("output across a mid-job decommission differs from sequential reference")
	}
	if state := trackerStateOf(c.JT, "tracker-2"); state == NodeAlive {
		t.Errorf("decommissioned tracker still %q in the membership view", state)
	}
}

// A DataNode decommission re-replicates every block it holds before
// the node departs: the replica sets are restored to the target count,
// spread over at least two racks, and never reference the retired
// node.
func TestDataNodeDecommissionReReplicates(t *testing.T) {
	c, err := StartCluster(4, 2, 512, 30*time.Millisecond, WithRacks(2), WithReplication(2))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Shutdown)

	data := make([]byte, 8*512)
	for i := range data {
		data[i] = byte(i * 31)
	}
	if err := c.Client.WriteFile("/repl", data, ""); err != nil {
		t.Fatal(err)
	}
	retired := c.DNs[1].Addr()
	if err := c.Client.DecommissionDataNode(retired); err != nil {
		t.Fatal(err)
	}

	nodes, err := c.Client.ListDataNodes()
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range nodes {
		if d.Addr == retired {
			t.Errorf("retired datanode %s still in the membership view (state %s)", d.Addr, d.State)
		}
	}
	nnc, err := rpcnet.Dial(c.NN.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer nnc.Close()
	var lookup LookupReply
	if err := nnc.Call("Lookup", LookupArgs{File: "/repl"}, &lookup); err != nil {
		t.Fatal(err)
	}
	for _, blk := range lookup.Blocks {
		addrs := blk.ReplicaAddrs()
		if len(addrs) != 2 {
			t.Errorf("block %d has %d replicas after decommission, want 2", blk.ID, len(addrs))
		}
		racks := make(map[string]bool)
		for i, addr := range addrs {
			if addr == retired {
				t.Errorf("block %d still lists retired replica %s", blk.ID, retired)
			}
			racks[blk.RackOfReplica(i)] = true
		}
		if len(racks) < 2 {
			t.Errorf("block %d replicas cover %d rack(s) after repair, want >= 2", blk.ID, len(racks))
		}
	}
	got, err := c.Client.ReadFile("/repl")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("file corrupted across datanode decommission")
	}
}

// A tracker that dies and later comes back under the same identity
// rejoins cleanly: the liveness sweep declares it dead, the rejoin
// heartbeat flips it back to alive, and it completes work again.
func TestDeadTrackerRejoinsCleanly(t *testing.T) {
	c, err := StartCluster(2, 2, 1024, 30*time.Millisecond, WithDeadAfter(150*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Shutdown)

	victim := c.TTs[1]
	localDN := c.DNs[1].Addr()
	waitFor(t, 5*time.Second, func() bool {
		return trackerStateOf(c.JT, victim.ID) == NodeAlive
	}, "victim tracker never registered")
	victim.Kill()
	waitFor(t, 5*time.Second, func() bool {
		return trackerStateOf(c.JT, victim.ID) == NodeDead
	}, "killed tracker never declared dead")

	reborn, err := StartTaskTracker(victim.ID, c.JT.Addr(), localDN, 2, 30*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(reborn.Stop)
	waitFor(t, 5*time.Second, func() bool {
		return trackerStateOf(c.JT, victim.ID) == NodeAlive
	}, "rejoined tracker never declared alive")

	id, err := c.Client.Submit(JobSpec{Name: "rejoin-pi", Kernel: "pi", Samples: 200000, NumTasks: 20})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Client.Wait(id, 15*time.Second); err != nil {
		t.Fatal(err)
	}
	st, err := c.Client.Status(id)
	if err != nil {
		t.Fatal(err)
	}
	if st.Counts[victim.ID] == 0 {
		t.Errorf("rejoined tracker %s completed no tasks: counts = %v", victim.ID, st.Counts)
	}
}

// On a two-rack cluster with rack-spread replicas, every block has a
// same-rack copy, so the grant loop's node-local and rack-local passes
// keep remote fetches off the books entirely.
func TestRackLocalityPreferred(t *testing.T) {
	c, err := StartCluster(4, 2, 512, 30*time.Millisecond, WithRacks(2), WithReplication(2))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Shutdown)

	data := make([]byte, 32*512)
	for i := range data {
		data[i] = byte(i * 7)
	}
	if err := c.Client.WriteFile("/rackdata", data, ""); err != nil {
		t.Fatal(err)
	}
	args, err := rpcnet.Marshal(AESArgs{
		Key: []byte("0123456789abcdef"), IV: make([]byte, 16), BlockBytes: 512,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Client.SubmitAndWait(JobSpec{
		Name: "rack-enc", Kernel: "aes-ctr", Input: "/rackdata", Args: args,
	}, 15*time.Second); err != nil {
		t.Fatal(err)
	}
	local, rack, remote := c.FetchTotals()
	t.Logf("fetches: local=%d rack=%d remote=%d", local, rack, remote)
	if local+rack+remote == 0 {
		t.Fatal("no block fetches recorded")
	}
	if local == 0 {
		t.Error("node-local grant pass produced no local fetches")
	}
	if remote != 0 {
		t.Errorf("%d remote fetches despite a same-rack replica of every block", remote)
	}
}

// Sanity on the exported membership view shapes the admin CLI prints.
func TestListTrackersSorted(t *testing.T) {
	c, err := StartCluster(3, 1, 1024, 30*time.Millisecond, WithRacks(2))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Shutdown)
	waitFor(t, 5*time.Second, func() bool {
		trackers, err := c.Client.ListTrackers()
		return err == nil && len(trackers) == 3
	}, "trackers never all registered")
	trackers, err := c.Client.ListTrackers()
	if err != nil {
		t.Fatal(err)
	}
	for i, ti := range trackers {
		if want := fmt.Sprintf("tracker-%d", i); ti.ID != want {
			t.Errorf("trackers[%d].ID = %q, want %q (sorted)", i, ti.ID, want)
		}
		if ti.Rack == "" {
			t.Errorf("tracker %s reports no rack", ti.ID)
		}
	}
}
