package netmr

import (
	"fmt"
	"sync"

	"hetmr/internal/spill"
)

// shuffleStore is a TaskTracker's data-plane store: map-side
// partitions and streamed task outputs, keyed by (job, map task,
// partition), held in memory up to a configurable watermark and
// spilled to disk-backed frames beyond it (optionally compressed).
// FetchPartition serves from memory or spill transparently — a reducer
// cannot tell where a partition lived.
type shuffleStore struct {
	mu    sync.Mutex
	s     *spill.Store
	byJob map[int64][]partKey // keys held per job, for GC
}

// newShuffleStore builds a store spilling under dir ("" selects the OS
// temp dir) above memLimit bytes (negative: never spill), through
// codec when non-nil.
func newShuffleStore(dir string, memLimit int64, codec spill.Codec) *shuffleStore {
	return &shuffleStore{
		s:     spill.NewStore(dir, memLimit, codec),
		byJob: make(map[int64][]partKey),
	}
}

// shuffleKey names one payload.
func shuffleKey(jobID int64, k partKey) string {
	return fmt.Sprintf("%d/%d/%d", jobID, k.mapTask, k.part)
}

// put stores one payload. The key registration and the store write
// happen under one lock so a concurrent purgeJob (a heartbeat GC
// racing a speculative attempt of a finished job) can never interleave
// between them and strand the payload outside the byJob index.
func (st *shuffleStore) put(jobID int64, k partKey, payload []byte) error {
	st.mu.Lock()
	defer st.mu.Unlock()
	if err := st.s.Put(shuffleKey(jobID, k), payload); err != nil {
		return err
	}
	st.byJob[jobID] = append(st.byJob[jobID], k)
	return nil
}

// get fetches one payload (from memory or spill).
func (st *shuffleStore) get(jobID int64, k partKey) ([]byte, bool) {
	data, err := st.s.Get(shuffleKey(jobID, k))
	if err != nil {
		return nil, false
	}
	return data, true
}

// purgeJob drops every payload a finished job left behind. Held under
// the same lock as put (see there); deletes are cheap (map removal or
// file unlink).
func (st *shuffleStore) purgeJob(jobID int64) {
	st.mu.Lock()
	defer st.mu.Unlock()
	for _, k := range st.byJob[jobID] {
		st.s.Delete(shuffleKey(jobID, k))
	}
	delete(st.byJob, jobID)
}

// heldJobs lists jobs with payloads in the store.
func (st *shuffleStore) heldJobs() []int64 {
	st.mu.Lock()
	defer st.mu.Unlock()
	if len(st.byJob) == 0 {
		return nil
	}
	held := make([]int64, 0, len(st.byJob))
	for id := range st.byJob {
		held = append(held, id)
	}
	return held
}

// spilledBytes reports the cumulative payload bytes this store sent to
// disk.
func (st *shuffleStore) spilledBytes() int64 { return st.s.SpilledBytes() }

// close drops everything and removes the spill directory.
func (st *shuffleStore) close() error { return st.s.Close() }
