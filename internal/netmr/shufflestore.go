package netmr

import (
	"fmt"
	"sync"

	"hetmr/internal/spill"
)

// shuffleStore is a TaskTracker's data-plane store: map-side
// partitions and streamed task outputs, keyed by (job, map task,
// partition), held in memory up to a configurable watermark and
// spilled to disk-backed frames beyond it (optionally compressed).
// FetchPartition serves from memory or spill transparently — a reducer
// cannot tell where a partition lived. Every key is job-id-prefixed,
// so concurrent tenants' jobs can never collide in one store and a
// single job's state can be purged without touching its neighbours.
type shuffleStore struct {
	mu    sync.Mutex
	s     *spill.Store
	byJob map[int64]*jobHold // per-job keys and bytes, for GC and quotas
}

// jobHold is one job's footprint in the store.
type jobHold struct {
	keys  []partKey
	bytes int64
}

// newShuffleStore builds a store spilling under dir ("" selects the OS
// temp dir) above memLimit bytes (negative: never spill), through
// codec when non-nil.
func newShuffleStore(dir string, memLimit int64, codec spill.Codec) *shuffleStore {
	return &shuffleStore{
		s:     spill.NewStore(dir, memLimit, codec),
		byJob: make(map[int64]*jobHold),
	}
}

// shuffleKey names one payload. The job ID prefix is the multi-tenant
// namespace: two jobs' identical (map, part) coordinates map to
// distinct store keys.
func shuffleKey(jobID int64, k partKey) string {
	return fmt.Sprintf("%d/%d/%d", jobID, k.mapTask, k.part)
}

// put stores one payload. The key registration and the store write
// happen under one lock so a concurrent purgeJob (a heartbeat GC
// racing a speculative attempt of a finished job) can never interleave
// between them and strand the payload outside the byJob index.
func (st *shuffleStore) put(jobID int64, k partKey, payload []byte) error {
	st.mu.Lock()
	defer st.mu.Unlock()
	key := shuffleKey(jobID, k)
	// A re-issued attempt landing on the same tracker replaces its
	// earlier payload: account the superseded size away instead of
	// double-counting it against the tenant's budget.
	replaced, _ := st.s.Size(key)
	if err := st.s.Put(key, payload); err != nil {
		return err
	}
	hold := st.byJob[jobID]
	if hold == nil {
		hold = &jobHold{}
		st.byJob[jobID] = hold
	}
	if replaced > 0 {
		hold.bytes -= replaced
	} else {
		hold.keys = append(hold.keys, k)
	}
	hold.bytes += int64(len(payload))
	return nil
}

// get fetches one payload (from memory or spill).
func (st *shuffleStore) get(jobID int64, k partKey) ([]byte, bool) {
	data, err := st.s.Get(shuffleKey(jobID, k))
	if err != nil {
		return nil, false
	}
	return data, true
}

// getRange fetches up to max bytes of one payload starting at off,
// plus the payload's total size — the chunked FetchPartition serving
// path. Repeatedly fetched spilled partitions are re-admitted into the
// spill store's hot cache, so a reducer's chunk loop decompresses a
// frame once, not once per chunk.
func (st *shuffleStore) getRange(jobID int64, k partKey, off, max int64) ([]byte, int64, bool) {
	data, size, err := st.s.GetRange(shuffleKey(jobID, k), off, max)
	if err != nil {
		return nil, 0, false
	}
	return data, size, true
}

// purgeJob drops every payload a finished job left behind. Held under
// the same lock as put (see there); deletes are cheap (map removal or
// file unlink).
func (st *shuffleStore) purgeJob(jobID int64) {
	st.mu.Lock()
	defer st.mu.Unlock()
	hold := st.byJob[jobID]
	if hold == nil {
		return
	}
	for _, k := range hold.keys {
		st.s.Delete(shuffleKey(jobID, k))
	}
	delete(st.byJob, jobID)
}

// held lists jobs with payloads in the store and the resident bytes
// behind each — the heartbeat's HeldJobs/HeldBytes pair, which feeds
// both the JobTracker's GC protocol and its per-tenant spill-budget
// accounting.
func (st *shuffleStore) held() ([]int64, map[int64]int64) {
	st.mu.Lock()
	defer st.mu.Unlock()
	if len(st.byJob) == 0 {
		return nil, nil
	}
	ids := make([]int64, 0, len(st.byJob))
	bytes := make(map[int64]int64, len(st.byJob))
	for id, hold := range st.byJob {
		ids = append(ids, id)
		bytes[id] = hold.bytes
	}
	return ids, bytes
}

// jobBytes reports one job's resident bytes (0 when the store holds
// nothing for it).
func (st *shuffleStore) jobBytes(jobID int64) int64 {
	st.mu.Lock()
	defer st.mu.Unlock()
	if hold := st.byJob[jobID]; hold != nil {
		return hold.bytes
	}
	return 0
}

// heldBytes reports the store's total resident payload bytes.
func (st *shuffleStore) heldBytes() int64 { return st.s.HeldBytes() }

// spilledBytes reports the cumulative payload bytes this store sent to
// disk.
func (st *shuffleStore) spilledBytes() int64 { return st.s.SpilledBytes() }

// close drops everything and removes the spill directory.
func (st *shuffleStore) close() error { return st.s.Close() }
