package netmr

import (
	"testing"
	"time"
)

func TestLocalityPreferredAssignment(t *testing.T) {
	c := startTestCluster(t, 3, 1024)
	// Pin the whole file to DataNode 0; tracker-0's fetches should be
	// local and other trackers should mostly stay away while tracker-0
	// has free slots. With heartbeat racing we can't demand perfection,
	// but the aggregate local fraction must dominate for spread data.
	data := make([]byte, 30*1024)
	if err := c.Client.WriteFile("/spread", data, ""); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Client.SubmitAndWait(JobSpec{
		Name: "wc", Kernel: "wordcount", Input: "/spread",
	}, 10*time.Second); err != nil {
		t.Fatal(err)
	}
	var local, remote int64
	for _, tt := range c.TTs {
		l, _, r := tt.FetchStats()
		local += l
		remote += r
	}
	if local+remote == 0 {
		t.Fatal("no fetches recorded")
	}
	if local < remote {
		t.Errorf("local=%d remote=%d: locality scheduling not preferring co-located blocks",
			local, remote)
	}
}

func TestLocalityStatsZeroWithoutLocalDN(t *testing.T) {
	// A tracker without a co-located DataNode counts everything
	// remote.
	nn, err := StartNameNode("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer nn.Close()
	dn, err := StartDataNode("127.0.0.1:0", nn.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer dn.Close()
	jt, err := StartJobTracker("127.0.0.1:0", nn.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer jt.Close()
	tt, err := StartTaskTracker("lonely", jt.Addr(), "", 2, 20*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	defer tt.Stop()
	client, _ := NewClient(nn.Addr(), jt.Addr(), 512)
	if err := client.WriteFile("/f", make([]byte, 2048), ""); err != nil {
		t.Fatal(err)
	}
	if _, err := client.SubmitAndWait(JobSpec{
		Name: "wc", Kernel: "wordcount", Input: "/f",
	}, 10*time.Second); err != nil {
		t.Fatal(err)
	}
	local, _, remote := tt.FetchStats()
	if local != 0 || remote != 4 {
		t.Errorf("stats = %d local / %d remote, want 0/4", local, remote)
	}
}
