package metrics

import "sync/atomic"

// Counter is a process-wide monotonic meter. The data-plane layers
// increment the package-level counters below as bytes move, so tests
// and benchmarks can assert on where traffic actually went (heartbeat
// channel vs. shuffle stores vs. spill files) without threading a
// meter handle through every constructor.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by n.
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Load returns the current total.
func (c *Counter) Load() int64 { return c.v.Load() }

// Reset zeroes the counter and returns the value it held — benchmarks
// reset between runs to meter one run at a time.
func (c *Counter) Reset() int64 { return c.v.Swap(0) }

// Package-level data-plane meters. They are cumulative across the
// process; callers that need a per-run figure snapshot Load before and
// after, or Reset between runs.
var (
	// SpillBytes counts payload bytes written to disk-backed spill
	// stores (DFS block stores, shuffle stores, sort-run stores) —
	// the external-memory half of the bounded-memory data plane.
	// Sizes are pre-compression, so the meter reflects logical
	// traffic regardless of codec.
	SpillBytes Counter

	// DataPlaneBytes counts task output bytes that crossed a control
	// plane (the netmr JobTracker's heartbeat channel). A streaming
	// job keeps this near zero: outputs stay on the workers and only
	// locations travel.
	DataPlaneBytes Counter

	// QuotaRejections counts job submissions refused by multi-tenant
	// admission control (netmr.ErrQuotaExceeded).
	QuotaRejections Counter

	// JobsKilled counts jobs terminated mid-flight by a Kill RPC.
	JobsKilled Counter

	// WireBytesRaw counts rpcnet frame payload bytes before optional
	// wire compression, send-side (requests and responses alike).
	WireBytesRaw Counter

	// WireBytesOnWire counts rpcnet frame payload bytes as actually
	// sent — after compression when a frame was compressed, equal to
	// the raw figure otherwise. WireBytesRaw−WireBytesOnWire is the
	// traffic the negotiated codec saved.
	WireBytesOnWire Counter
)
