// Package metrics holds the figure/series data model the experiment
// harness produces and renders: each of the paper's figures becomes a
// Figure with labelled series, printable as an aligned text table or
// as TSV for external plotting.
package metrics

import (
	"fmt"
	"io"
	"math"
	"strings"
)

// Point is one (x, y) measurement.
type Point struct {
	X float64
	Y float64
}

// Series is one labelled curve of a figure.
type Series struct {
	Label  string
	Points []Point
}

// Y returns the series' y value at x, or NaN if absent.
func (s *Series) Y(x float64) float64 {
	for _, p := range s.Points {
		if p.X == x {
			return p.Y
		}
	}
	return math.NaN()
}

// Figure is one reproduced paper figure.
type Figure struct {
	ID     string // e.g. "fig2"
	Title  string
	XLabel string
	YLabel string
	XLog   bool
	YLog   bool
	Series []Series
}

// FindSeries returns the series with the given label, or nil.
func (f *Figure) FindSeries(label string) *Series {
	for i := range f.Series {
		if f.Series[i].Label == label {
			return &f.Series[i]
		}
	}
	return nil
}

// XValues returns the union of x values across series, in first-seen
// order (series are expected to share a sweep).
func (f *Figure) XValues() []float64 {
	var xs []float64
	seen := make(map[float64]bool)
	for _, s := range f.Series {
		for _, p := range s.Points {
			if !seen[p.X] {
				seen[p.X] = true
				xs = append(xs, p.X)
			}
		}
	}
	return xs
}

// Render writes the figure as an aligned text table, one row per x
// value and one column per series — the same rows/series the paper
// plots.
func (f *Figure) Render(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "%s — %s\n", strings.ToUpper(f.ID), f.Title); err != nil {
		return err
	}
	axes := fmt.Sprintf("x: %s%s, y: %s%s", f.XLabel, logTag(f.XLog), f.YLabel, logTag(f.YLog))
	if _, err := fmt.Fprintln(w, axes); err != nil {
		return err
	}
	headers := []string{f.XLabel}
	for _, s := range f.Series {
		headers = append(headers, s.Label)
	}
	rows := [][]string{headers}
	for _, x := range f.XValues() {
		row := []string{formatNum(x)}
		for _, s := range f.Series {
			row = append(row, formatNum(s.Y(x)))
		}
		rows = append(rows, row)
	}
	widths := make([]int, len(headers))
	for _, row := range rows {
		for i, cell := range row {
			if len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	for _, row := range rows {
		var sb strings.Builder
		for i, cell := range row {
			if i > 0 {
				sb.WriteString("  ")
			}
			sb.WriteString(fmt.Sprintf("%*s", widths[i], cell))
		}
		if _, err := fmt.Fprintln(w, sb.String()); err != nil {
			return err
		}
	}
	return nil
}

// WriteTSV emits the figure as tab-separated values with a header row,
// convenient for gnuplot.
func (f *Figure) WriteTSV(w io.Writer) error {
	cols := []string{f.XLabel}
	for _, s := range f.Series {
		cols = append(cols, s.Label)
	}
	if _, err := fmt.Fprintln(w, strings.Join(cols, "\t")); err != nil {
		return err
	}
	for _, x := range f.XValues() {
		row := []string{formatNum(x)}
		for _, s := range f.Series {
			row = append(row, formatNum(s.Y(x)))
		}
		if _, err := fmt.Fprintln(w, strings.Join(row, "\t")); err != nil {
			return err
		}
	}
	return nil
}

func logTag(on bool) string {
	if on {
		return " (log)"
	}
	return ""
}

// formatNum renders numbers compactly: integers plainly, large/small
// magnitudes in scientific notation, NaN as "-".
func formatNum(v float64) string {
	switch {
	case math.IsNaN(v):
		return "-"
	case v == 0:
		return "0"
	case math.Abs(v) >= 1e7 || math.Abs(v) < 1e-3:
		return fmt.Sprintf("%.3g", v)
	case v == math.Trunc(v):
		return fmt.Sprintf("%.0f", v)
	default:
		return fmt.Sprintf("%.2f", v)
	}
}
