package metrics

import (
	"math"
	"strings"
	"testing"
)

func sampleFigure() Figure {
	return Figure{
		ID:     "figX",
		Title:  "Test figure",
		XLabel: "Nodes",
		YLabel: "Time(s)",
		YLog:   true,
		Series: []Series{
			{Label: "A", Points: []Point{{4, 100}, {8, 50}}},
			{Label: "B", Points: []Point{{4, 200}, {8, 120.5}}},
		},
	}
}

func TestSeriesY(t *testing.T) {
	f := sampleFigure()
	if y := f.Series[0].Y(4); y != 100 {
		t.Errorf("Y(4) = %g", y)
	}
	if y := f.Series[0].Y(99); !math.IsNaN(y) {
		t.Errorf("Y(99) = %g, want NaN", y)
	}
}

func TestFindSeries(t *testing.T) {
	f := sampleFigure()
	if s := f.FindSeries("B"); s == nil || s.Label != "B" {
		t.Error("FindSeries(B) failed")
	}
	if s := f.FindSeries("missing"); s != nil {
		t.Error("FindSeries(missing) should be nil")
	}
}

func TestXValuesUnionOrdered(t *testing.T) {
	f := sampleFigure()
	f.Series[1].Points = append(f.Series[1].Points, Point{X: 16, Y: 60})
	xs := f.XValues()
	want := []float64{4, 8, 16}
	if len(xs) != 3 {
		t.Fatalf("XValues = %v", xs)
	}
	for i := range want {
		if xs[i] != want[i] {
			t.Errorf("xs[%d] = %g, want %g", i, xs[i], want[i])
		}
	}
}

func TestRenderContainsEverything(t *testing.T) {
	f := sampleFigure()
	var sb strings.Builder
	if err := f.Render(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"FIGX", "Test figure", "Nodes", "Time(s) (log)", "A", "B", "100", "120.50"} {
		if !strings.Contains(out, want) {
			t.Errorf("render output missing %q:\n%s", want, out)
		}
	}
	// Rows: title + axes + header + 2 data rows.
	if lines := strings.Count(strings.TrimRight(out, "\n"), "\n") + 1; lines != 5 {
		t.Errorf("render has %d lines, want 5:\n%s", lines, out)
	}
}

func TestRenderMissingPointDash(t *testing.T) {
	f := sampleFigure()
	f.Series[1].Points = f.Series[1].Points[:1] // B has no x=8
	var sb strings.Builder
	if err := f.Render(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "-") {
		t.Error("missing point should render as dash")
	}
}

func TestWriteTSV(t *testing.T) {
	f := sampleFigure()
	var sb strings.Builder
	if err := f.WriteTSV(&sb); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(sb.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("TSV has %d lines, want 3", len(lines))
	}
	if lines[0] != "Nodes\tA\tB" {
		t.Errorf("header = %q", lines[0])
	}
	if !strings.HasPrefix(lines[1], "4\t") {
		t.Errorf("row = %q", lines[1])
	}
}

func TestFormatNum(t *testing.T) {
	cases := map[float64]string{
		0:        "0",
		42:       "42",
		42.5:     "42.50",
		1e9:      "1e+09",
		0.000001: "1e-06",
	}
	for v, want := range cases {
		if got := formatNum(v); got != want {
			t.Errorf("formatNum(%g) = %q, want %q", v, got, want)
		}
	}
	if got := formatNum(math.NaN()); got != "-" {
		t.Errorf("formatNum(NaN) = %q", got)
	}
}
