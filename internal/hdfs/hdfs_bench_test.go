package hdfs

import (
	"fmt"
	"testing"
)

// BenchmarkWriterLargeWrite streams multi-megabyte payloads through
// the Writer with a small block size. Before the offset-cursor fix the
// Writer reallocated its whole remaining buffer once per emitted block
// — O(n²) in the write size, visible here as ns/op growing with the
// square of MB; after it, MB/s holds steady as the size quadruples.
func BenchmarkWriterLargeWrite(b *testing.B) {
	for _, mb := range []int{1, 4, 16} {
		b.Run(fmt.Sprintf("%dMB", mb), func(b *testing.B) {
			size := mb << 20
			data := make([]byte, size)
			for i := range data {
				data[i] = byte(i)
			}
			b.SetBytes(int64(size))
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				nn, err := NewNameNode(4096, 1)
				if err != nil {
					b.Fatal(err)
				}
				if _, err := nn.RegisterDataNode("n0"); err != nil {
					b.Fatal(err)
				}
				b.StartTimer()
				w, err := nn.Create("/bench", "")
				if err != nil {
					b.Fatal(err)
				}
				if _, err := w.Write(data); err != nil {
					b.Fatal(err)
				}
				if err := w.Close(); err != nil {
					b.Fatal(err)
				}
				b.StopTimer()
				nn.Close()
				b.StartTimer()
			}
		})
	}
}

// BenchmarkWriterChunkedWrite is the streaming-ingest shape: the same
// payload arriving in 64 KB Writes, as CreateFrom delivers it.
func BenchmarkWriterChunkedWrite(b *testing.B) {
	const size = 4 << 20
	data := make([]byte, size)
	for i := range data {
		data[i] = byte(i)
	}
	b.SetBytes(size)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		nn, err := NewNameNode(4096, 1)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := nn.RegisterDataNode("n0"); err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		w, err := nn.Create("/bench", "")
		if err != nil {
			b.Fatal(err)
		}
		for off := 0; off < size; off += 64 << 10 {
			if _, err := w.Write(data[off : off+64<<10]); err != nil {
				b.Fatal(err)
			}
		}
		if err := w.Close(); err != nil {
			b.Fatal(err)
		}
		b.StopTimer()
		nn.Close()
		b.StartTimer()
	}
}
