package hdfs

import (
	"bytes"
	"errors"
	"testing"
	"testing/quick"
)

func newCluster(t testing.TB, blockSize int64, repl, nodes int) *NameNode {
	t.Helper()
	nn, err := NewNameNode(blockSize, repl)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < nodes; i++ {
		if _, err := nn.RegisterDataNode(nodeName(i)); err != nil {
			t.Fatal(err)
		}
	}
	return nn
}

func nodeName(i int) string { return string(rune('a'+i/26)) + string(rune('a'+i%26)) }

func TestNewNameNodeValidation(t *testing.T) {
	if _, err := NewNameNode(0, 1); err == nil {
		t.Error("zero block size should fail")
	}
	if _, err := NewNameNode(64, 0); !errors.Is(err, ErrBadReplFactor) {
		t.Errorf("zero replication: %v", err)
	}
	nn, err := NewNameNode(64, 2)
	if err != nil {
		t.Fatal(err)
	}
	if nn.BlockSize() != 64 || nn.Replication() != 2 {
		t.Error("accessors wrong")
	}
}

func TestWriteReadRoundTrip(t *testing.T) {
	nn := newCluster(t, 100, 1, 4)
	data := make([]byte, 567) // spans 6 blocks
	for i := range data {
		data[i] = byte(i * 11)
	}
	if err := nn.WriteFile("/data/file1", data, ""); err != nil {
		t.Fatal(err)
	}
	got, err := nn.ReadFile("/data/file1")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("roundtrip corrupted data")
	}
	size, err := nn.FileSize("/data/file1")
	if err != nil || size != int64(len(data)) {
		t.Errorf("FileSize = %d, %v", size, err)
	}
}

func TestBlockCutting(t *testing.T) {
	nn := newCluster(t, 100, 1, 4)
	if err := nn.WriteFile("/f", make([]byte, 250), ""); err != nil {
		t.Fatal(err)
	}
	locs, err := nn.Locations("/f")
	if err != nil {
		t.Fatal(err)
	}
	if len(locs) != 3 {
		t.Fatalf("250 bytes at 100-block: %d blocks, want 3", len(locs))
	}
	wantSizes := []int64{100, 100, 50}
	var off int64
	for i, loc := range locs {
		if loc.Size != wantSizes[i] {
			t.Errorf("block %d size %d, want %d", i, loc.Size, wantSizes[i])
		}
		if loc.Offset != off {
			t.Errorf("block %d offset %d, want %d", i, loc.Offset, off)
		}
		off += loc.Size
		if len(loc.Hosts) != 1 {
			t.Errorf("block %d has %d hosts, want 1 (replication 1)", i, len(loc.Hosts))
		}
	}
}

func TestReplicationFactor(t *testing.T) {
	nn := newCluster(t, 100, 3, 5)
	if err := nn.WriteFile("/f", make([]byte, 300), ""); err != nil {
		t.Fatal(err)
	}
	locs, _ := nn.Locations("/f")
	for i, loc := range locs {
		if len(loc.Hosts) != 3 {
			t.Errorf("block %d has %d replicas, want 3", i, len(loc.Hosts))
		}
		seen := map[string]bool{}
		for _, h := range loc.Hosts {
			if seen[h] {
				t.Errorf("block %d has duplicate replica host %s", i, h)
			}
			seen[h] = true
		}
	}
	if nn.TotalBytes() != 900 {
		t.Errorf("TotalBytes = %d, want 900 (3 replicas of 300)", nn.TotalBytes())
	}
}

func TestWriterLocalityPreference(t *testing.T) {
	nn := newCluster(t, 100, 1, 4)
	if err := nn.WriteFile("/f", make([]byte, 400), "ab"); err != nil {
		t.Fatal(err)
	}
	locs, _ := nn.Locations("/f")
	for i, loc := range locs {
		if loc.Hosts[0] != "ab" {
			t.Errorf("block %d primary host %s, want ab (writer locality)", i, loc.Hosts[0])
		}
	}
}

func TestPlacementBalanced(t *testing.T) {
	nn := newCluster(t, 10, 1, 4)
	if err := nn.CreateSynthetic("/big", 400); err != nil {
		t.Fatal(err)
	}
	// 40 blocks over 4 nodes: least-loaded placement balances evenly.
	counts := map[string]int{}
	locs, _ := nn.Locations("/big")
	for _, loc := range locs {
		counts[loc.Hosts[0]]++
	}
	for node, c := range counts {
		if c != 10 {
			t.Errorf("node %s holds %d blocks, want 10", node, c)
		}
	}
}

func TestSyntheticFiles(t *testing.T) {
	nn := newCluster(t, 100, 1, 2)
	if err := nn.CreateSynthetic("/syn", 250); err != nil {
		t.Fatal(err)
	}
	size, err := nn.FileSize("/syn")
	if err != nil || size != 250 {
		t.Errorf("size = %d, %v", size, err)
	}
	if _, err := nn.Open("/syn", ""); !errors.Is(err, ErrSynthetic) {
		t.Errorf("Open on synthetic: %v", err)
	}
	locs, err := nn.Locations("/syn")
	if err != nil || len(locs) != 3 {
		t.Errorf("locations: %d, %v", len(locs), err)
	}
	if err := nn.CreateSynthetic("/syn", 1); !errors.Is(err, ErrExists) {
		t.Errorf("duplicate create: %v", err)
	}
	if err := nn.CreateSynthetic("/neg", -1); err == nil {
		t.Error("negative size should fail")
	}
}

func TestErrorsOnMissing(t *testing.T) {
	nn := newCluster(t, 100, 1, 1)
	if _, err := nn.FileSize("/nope"); !errors.Is(err, ErrNotFound) {
		t.Errorf("FileSize: %v", err)
	}
	if _, err := nn.Open("/nope", ""); !errors.Is(err, ErrNotFound) {
		t.Errorf("Open: %v", err)
	}
	if _, err := nn.Locations("/nope"); !errors.Is(err, ErrNotFound) {
		t.Errorf("Locations: %v", err)
	}
	if err := nn.Delete("/nope"); !errors.Is(err, ErrNotFound) {
		t.Errorf("Delete: %v", err)
	}
	if nn.Exists("/nope") {
		t.Error("Exists on missing file")
	}
}

func TestNoDataNodes(t *testing.T) {
	nn, _ := NewNameNode(100, 1)
	if err := nn.WriteFile("/f", make([]byte, 10), ""); !errors.Is(err, ErrNoDataNodes) {
		t.Errorf("write with no datanodes: %v", err)
	}
}

func TestDeleteFreesSpace(t *testing.T) {
	nn := newCluster(t, 100, 1, 2)
	nn.WriteFile("/f", make([]byte, 500), "")
	if nn.TotalBytes() != 500 {
		t.Fatalf("TotalBytes = %d", nn.TotalBytes())
	}
	if err := nn.Delete("/f"); err != nil {
		t.Fatal(err)
	}
	if nn.TotalBytes() != 0 {
		t.Errorf("TotalBytes after delete = %d", nn.TotalBytes())
	}
	if nn.Exists("/f") {
		t.Error("file still exists after delete")
	}
}

func TestListSorted(t *testing.T) {
	nn := newCluster(t, 100, 1, 1)
	for _, f := range []string{"/c", "/a", "/b"} {
		nn.CreateSynthetic(f, 10)
	}
	got := nn.List()
	want := []string{"/a", "/b", "/c"}
	if len(got) != 3 || got[0] != want[0] || got[1] != want[1] || got[2] != want[2] {
		t.Errorf("List = %v", got)
	}
}

func TestKillDataNodeReplication1LosesBlocks(t *testing.T) {
	nn := newCluster(t, 100, 1, 2)
	nn.WriteFile("/f", make([]byte, 400), "aa")
	if err := nn.KillDataNode("aa"); err != nil {
		t.Fatal(err)
	}
	locs, _ := nn.Locations("/f")
	lost := 0
	for _, loc := range locs {
		if len(loc.Hosts) == 0 {
			lost++
		}
	}
	if lost == 0 {
		t.Error("replication 1 + dead primary node should lose blocks")
	}
	// Reader must surface the loss.
	r, err := nn.Open("/f", "")
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 1024)
	if _, err := r.Read(buf); !errors.Is(err, ErrBlockLost) {
		t.Errorf("read of lost block: %v", err)
	}
}

func TestKillDataNodeReplication2Survives(t *testing.T) {
	nn := newCluster(t, 100, 2, 3)
	data := make([]byte, 400)
	for i := range data {
		data[i] = byte(i)
	}
	nn.WriteFile("/f", data, "aa")
	if err := nn.KillDataNode("aa"); err != nil {
		t.Fatal(err)
	}
	got, err := nn.ReadFile("/f")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("data corrupted after node death")
	}
	// Re-replication restored the factor on the survivors.
	locs, _ := nn.Locations("/f")
	for i, loc := range locs {
		if len(loc.Hosts) != 2 {
			t.Errorf("block %d has %d live replicas after re-replication, want 2", i, len(loc.Hosts))
		}
	}
}

func TestKillUnknownOrDeadNode(t *testing.T) {
	nn := newCluster(t, 100, 1, 1)
	if err := nn.KillDataNode("zz"); !errors.Is(err, ErrUnknownNode) {
		t.Errorf("unknown: %v", err)
	}
	nn.KillDataNode("aa")
	if err := nn.KillDataNode("aa"); !errors.Is(err, ErrNodeDead) {
		t.Errorf("double kill: %v", err)
	}
}

func TestReaderLocalityPreference(t *testing.T) {
	nn := newCluster(t, 100, 2, 3)
	nn.WriteFile("/f", make([]byte, 100), "bb")
	r, err := nn.Open("/f", "cc")
	if err != nil {
		t.Fatal(err)
	}
	// The reader prefers its own node if it holds a replica; we can
	// only observe success here, plus Locations showing bb primary.
	buf := make([]byte, 200)
	n, _ := r.Read(buf)
	if n != 100 {
		t.Errorf("read %d bytes", n)
	}
}

func TestRegisterDuplicateDataNode(t *testing.T) {
	nn := newCluster(t, 100, 1, 1)
	if _, err := nn.RegisterDataNode("aa"); err == nil {
		t.Error("duplicate registration should fail")
	}
	if got := nn.DataNodes(); len(got) != 1 || got[0] != "aa" {
		t.Errorf("DataNodes = %v", got)
	}
}

// Property: write/read roundtrip for random sizes and block sizes, and
// stored byte accounting equals size x replication.
func TestRoundTripProperty(t *testing.T) {
	f := func(data []byte, blockRaw uint8, replRaw, nodesRaw uint8) bool {
		blockSize := int64(blockRaw)%500 + 1
		nodes := int(nodesRaw)%5 + 1
		repl := int(replRaw)%nodes + 1
		nn, err := NewNameNode(blockSize, repl)
		if err != nil {
			return false
		}
		for i := 0; i < nodes; i++ {
			nn.RegisterDataNode(nodeName(i))
		}
		if err := nn.WriteFile("/f", data, ""); err != nil {
			return false
		}
		got, err := nn.ReadFile("/f")
		if err != nil {
			return false
		}
		if !bytes.Equal(got, data) {
			return false
		}
		return nn.TotalBytes() == int64(len(data))*int64(repl)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestWriterAfterClose(t *testing.T) {
	nn := newCluster(t, 100, 1, 1)
	w, _ := nn.Create("/f", "")
	w.Write([]byte("hello"))
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Errorf("double close: %v", err)
	}
	if _, err := w.Write([]byte("x")); err == nil {
		t.Error("write after close should fail")
	}
	if _, err := nn.Create("/f", ""); !errors.Is(err, ErrExists) {
		t.Errorf("recreate: %v", err)
	}
}
