package hdfs

import (
	"bytes"
	"errors"
	"io"
	"testing"

	"hetmr/internal/spill"
)

// streamCluster builds a NameNode with n datanodes.
func streamCluster(t *testing.T, blockSize int64, repl, nodes int, opts ...Option) *NameNode {
	t.Helper()
	nn, err := NewNameNode(blockSize, repl, opts...)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < nodes; i++ {
		if _, err := nn.RegisterDataNode(string(rune('a' + i))); err != nil {
			t.Fatal(err)
		}
	}
	t.Cleanup(func() { nn.Close() })
	return nn
}

func streamPayload(n int) []byte {
	p := make([]byte, n)
	for i := range p {
		p[i] = byte(i*7 + i>>8)
	}
	return p
}

// TestReaderByteAtATime drives the Reader with a 1-byte buffer — the
// io.Reader contract at its least convenient.
func TestReaderByteAtATime(t *testing.T) {
	nn := streamCluster(t, 64, 1, 3)
	want := streamPayload(1000) // spans 16 blocks, last one partial
	if err := nn.WriteFile("/f", want, ""); err != nil {
		t.Fatal(err)
	}
	r, err := nn.Open("/f", "")
	if err != nil {
		t.Fatal(err)
	}
	var got []byte
	buf := make([]byte, 1)
	for {
		n, err := r.Read(buf)
		got = append(got, buf[:n]...)
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("byte-at-a-time read got %d bytes, differs from the %d written", len(got), len(want))
	}
}

// TestReaderCopyMatchesReadFile pins io.Copy through the Reader to the
// materialized ReadFile path.
func TestReaderCopyMatchesReadFile(t *testing.T) {
	nn := streamCluster(t, 100, 2, 3)
	want := streamPayload(5_555)
	if err := nn.WriteFile("/f", want, ""); err != nil {
		t.Fatal(err)
	}
	r, err := nn.Open("/f", "")
	if err != nil {
		t.Fatal(err)
	}
	var via bytes.Buffer
	n, err := io.Copy(&via, r)
	if err != nil {
		t.Fatal(err)
	}
	if n != int64(len(want)) {
		t.Fatalf("io.Copy moved %d bytes, want %d", n, len(want))
	}
	whole, err := nn.ReadFile("/f")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(via.Bytes(), whole) || !bytes.Equal(whole, want) {
		t.Fatal("io.Copy, ReadFile and the written bytes disagree")
	}
}

// TestReaderFailoverMidRead kills a replica holder between reads: the
// reader must fail over to surviving replicas (refreshing the layout
// re-replication may have changed) without corrupting the stream.
func TestReaderFailoverMidRead(t *testing.T) {
	nn := streamCluster(t, 100, 2, 4)
	want := streamPayload(2_000) // 20 blocks over 4 nodes
	if err := nn.WriteFile("/f", want, ""); err != nil {
		t.Fatal(err)
	}
	r, err := nn.Open("/f", "")
	if err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 0, len(want))
	buf := make([]byte, 128)
	killed := false
	for {
		n, err := r.Read(buf)
		got = append(got, buf[:n]...)
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatalf("read after %d bytes: %v", len(got), err)
		}
		if !killed && len(got) >= len(want)/3 {
			// Kill a node that still holds upcoming blocks.
			locs, err := nn.Locations("/f")
			if err != nil {
				t.Fatal(err)
			}
			last := locs[len(locs)-1]
			if len(last.Hosts) == 0 {
				t.Fatal("last block has no hosts before the kill")
			}
			if err := nn.KillDataNode(last.Hosts[0]); err != nil {
				t.Fatal(err)
			}
			killed = true
		}
	}
	if !killed {
		t.Fatal("test never killed a node")
	}
	if !bytes.Equal(got, want) {
		t.Fatal("mid-read failover corrupted the stream")
	}
}

// TestReaderFailsWhenAllReplicasDie pins the terminal case: a block
// whose every replica is gone surfaces an error, not silent
// truncation.
func TestReaderFailsWhenAllReplicasDie(t *testing.T) {
	nn := streamCluster(t, 100, 1, 2)
	if err := nn.WriteFile("/f", streamPayload(400), ""); err != nil {
		t.Fatal(err)
	}
	r, err := nn.Open("/f", "")
	if err != nil {
		t.Fatal(err)
	}
	for _, node := range nn.DataNodes() {
		if err := nn.KillDataNode(node); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := io.ReadAll(r); err == nil {
		t.Fatal("read over all-dead replicas succeeded")
	}
}

// TestSpillBlockStoreBoundsMemory writes a file far above the store's
// watermark and checks payloads spilled to disk, replicas shared one
// payload, and the bytes read back identically.
func TestSpillBlockStoreBoundsMemory(t *testing.T) {
	store := NewSpillBlockStore(t.TempDir(), 1_000, nil)
	nn := streamCluster(t, 500, 3, 3, WithBlockStore(store))
	want := streamPayload(10_000) // 20 blocks, replication 3
	if err := nn.WriteFile("/f", want, ""); err != nil {
		t.Fatal(err)
	}
	inner := store.(spillBlockStore).s
	if got := inner.MemBytes(); got > 1_000 {
		t.Fatalf("store holds %d bytes in memory above the 1000-byte watermark", got)
	}
	// Replicas share one payload: the store saw the file once, not
	// replication times.
	if total := inner.MemBytes() + inner.SpilledBytes(); total != int64(len(want)) {
		t.Fatalf("store holds %d payload bytes for a %d-byte file at replication 3 — replicas must share payloads", total, len(want))
	}
	got, err := nn.ReadFile("/f")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("spilled file did not read back identically")
	}
	// Failover still works when payloads live on disk.
	if err := nn.KillDataNode(nn.DataNodes()[0]); err != nil {
		t.Fatal(err)
	}
	got, err = nn.ReadFile("/f")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("spilled file did not survive a node death")
	}
}

// TestCreateFromStreams ingests a reader without materializing it and
// checks Delete releases the spill space.
func TestCreateFromStreams(t *testing.T) {
	store := NewSpillBlockStore(t.TempDir(), 0, spill.Flate())
	nn := streamCluster(t, 256, 1, 2, WithBlockStore(store))
	want := streamPayload(4_096)
	n, err := nn.CreateFrom("/f", "", bytes.NewReader(want))
	if err != nil {
		t.Fatal(err)
	}
	if n != int64(len(want)) {
		t.Fatalf("CreateFrom wrote %d bytes, want %d", n, len(want))
	}
	got, err := nn.ReadFile("/f")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("CreateFrom round-trip differs")
	}
	if err := nn.Delete("/f"); err != nil {
		t.Fatal(err)
	}
	if store.(spillBlockStore).s.Len() != 0 {
		t.Fatal("Delete left payloads in the block store")
	}
}

// TestSyntheticStillErrs pins that metadata-only files keep refusing
// reads after the store refactor.
func TestSyntheticStillErrs(t *testing.T) {
	nn := streamCluster(t, 100, 1, 2)
	if err := nn.CreateSynthetic("/syn", 1_000); err != nil {
		t.Fatal(err)
	}
	if _, err := nn.Open("/syn", ""); !errors.Is(err, ErrSynthetic) {
		t.Fatalf("Open on synthetic file: %v", err)
	}
	locs, err := nn.Locations("/syn")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := nn.ReadBlock(locs[0].Block, locs[0].Hosts[0]); !errors.Is(err, ErrSynthetic) {
		t.Fatalf("ReadBlock on synthetic block: %v", err)
	}
}
