package hdfs

import (
	"bytes"
	"fmt"
	"io"
	"sync"
	"testing"
)

// The live runner hits the NameNode from many mapper goroutines at
// once; these tests pin down the concurrency contract.

func TestConcurrentWritesAndReads(t *testing.T) {
	nn := newCluster(t, 1024, 1, 4)
	const writers = 16
	var wg sync.WaitGroup
	errs := make(chan error, writers)
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			name := fmt.Sprintf("/f%02d", w)
			data := bytes.Repeat([]byte{byte(w)}, 3000+w)
			if err := nn.WriteFile(name, data, ""); err != nil {
				errs <- err
				return
			}
			got, err := nn.ReadFile(name)
			if err != nil {
				errs <- err
				return
			}
			if !bytes.Equal(got, data) {
				errs <- fmt.Errorf("file %s corrupted", name)
			}
		}(w)
	}
	wg.Wait()
	select {
	case err := <-errs:
		t.Fatal(err)
	default:
	}
	if got := len(nn.List()); got != writers {
		t.Errorf("files = %d, want %d", got, writers)
	}
}

func TestConcurrentReadersSameFile(t *testing.T) {
	nn := newCluster(t, 512, 1, 3)
	data := make([]byte, 10000)
	for i := range data {
		data[i] = byte(i * 3)
	}
	if err := nn.WriteFile("/shared", data, ""); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for r := 0; r < 8; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			got, err := nn.ReadFile("/shared")
			if err != nil {
				errs <- err
				return
			}
			if !bytes.Equal(got, data) {
				errs <- fmt.Errorf("concurrent read corrupted")
			}
		}()
	}
	wg.Wait()
	select {
	case err := <-errs:
		t.Fatal(err)
	default:
	}
}

func TestReaderSmallBuffer(t *testing.T) {
	nn := newCluster(t, 64, 1, 2)
	data := make([]byte, 300)
	for i := range data {
		data[i] = byte(i)
	}
	nn.WriteFile("/f", data, "")
	r, err := nn.Open("/f", "")
	if err != nil {
		t.Fatal(err)
	}
	// 7-byte reads across 64-byte block boundaries.
	var got []byte
	buf := make([]byte, 7)
	for {
		n, err := r.Read(buf)
		got = append(got, buf[:n]...)
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
	}
	if !bytes.Equal(got, data) {
		t.Fatal("small-buffer read corrupted data")
	}
}
