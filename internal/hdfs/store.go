package hdfs

import (
	"strconv"

	"hetmr/internal/spill"
)

// BlockStore holds block payloads. The NameNode stores each block's
// payload exactly once, no matter how many replicas reference it — a
// replica is placement metadata, the payload is immutable — so the
// store's memory watermark bounds the DFS's resident size, not the
// replication factor times it.
//
// Implementations must be safe for concurrent use. Payloads returned
// by Get may alias the stored copy and must be treated as immutable.
// (Reads are block-granular on purpose: Reader streams a file block
// by block, holding one O(blockSize) payload at a time.)
type BlockStore interface {
	// Put stores a block payload (replacing any previous payload —
	// block IDs are never reused, so that only happens on re-write).
	Put(id BlockID, data []byte) error
	// Get returns the whole payload.
	Get(id BlockID) ([]byte, error)
	// Delete drops the payload.
	Delete(id BlockID)
	// Close releases the store's resources (spill files).
	Close() error
}

// spillBlockStore adapts spill.Store to the BlockStore interface.
type spillBlockStore struct {
	s *spill.Store
}

func blockKey(id BlockID) string { return strconv.FormatInt(int64(id), 10) }

func (b spillBlockStore) Put(id BlockID, data []byte) error { return b.s.Put(blockKey(id), data) }
func (b spillBlockStore) Get(id BlockID) ([]byte, error)    { return b.s.Get(blockKey(id)) }
func (b spillBlockStore) Delete(id BlockID)                 { b.s.Delete(blockKey(id)) }
func (b spillBlockStore) Close() error                      { return b.s.Close() }

// NewMemBlockStore builds the default all-in-memory block store — the
// historical hdfs behaviour.
func NewMemBlockStore() BlockStore {
	return spillBlockStore{s: spill.NewStore("", spill.NoSpill, nil)}
}

// NewSpillBlockStore builds a disk-backed block store: payloads stay
// in memory up to memLimit bytes and spill to files under a fresh
// directory inside dir ("" selects the OS temp dir) beyond it, through
// codec when non-nil. memLimit zero spills every block (a pure file
// store); negative keeps everything in memory — the same convention
// as every other spill-configured layer (core.WithSpill,
// netmr.WithBlockSpill/WithShuffleSpill). This is what lets the live
// runner stage and read datasets far larger than RAM with
// O(blockSize) resident memory.
func NewSpillBlockStore(dir string, memLimit int64, codec spill.Codec) BlockStore {
	return spillBlockStore{s: spill.NewStore(dir, memLimit, codec)}
}
