// Package hdfs is a from-scratch implementation of the Hadoop
// Distributed File System's architecture as the paper uses it
// (§III-A): a master NameNode owning the namespace and block map, and
// DataNodes storing fixed-size blocks, with configurable replication
// and locality-aware block placement.
//
// Block payloads live in a pluggable BlockStore: the default keeps
// everything in memory (live execution, examples, tests), while the
// spill-backed store keeps payloads under a memory watermark and
// spills the rest to disk — the bounded-memory path for datasets far
// larger than RAM. Replicas share one immutable payload per block;
// replication is placement metadata, not extra copies. Files can also
// be synthetic — metadata and sizes only — so the simulated
// experiments can describe the paper's 120 GB working sets without
// allocating them.
package hdfs

import (
	"errors"
	"fmt"
	"io"
	"sort"
	"sync"

	"hetmr/internal/topo"
)

// Errors returned by the file system.
var (
	ErrNotFound      = errors.New("hdfs: file not found")
	ErrExists        = errors.New("hdfs: file already exists")
	ErrNoDataNodes   = errors.New("hdfs: no live datanodes")
	ErrSynthetic     = errors.New("hdfs: synthetic file has no readable data")
	ErrBlockLost     = errors.New("hdfs: block has no live replica")
	ErrUnknownNode   = errors.New("hdfs: unknown datanode")
	ErrNodeDead      = errors.New("hdfs: datanode is dead")
	ErrBadReplFactor = errors.New("hdfs: replication factor must be >= 1")
)

// BlockID identifies one block cluster-wide.
type BlockID int64

// DataNode stores block replicas for one cluster node. A replica is
// metadata — block ID and size — referencing the payload the NameNode's
// BlockStore holds once.
type DataNode struct {
	Name   string
	Rack   string            // topology assignment (topo.DefaultRack when flat)
	blocks map[BlockID]int64 // replica sizes
	used   int64
	alive  bool
}

// UsedBytes returns the bytes stored on this datanode.
func (d *DataNode) UsedBytes() int64 { return d.used }

// BlockCount returns the number of replicas stored here.
func (d *DataNode) BlockCount() int { return len(d.blocks) }

// Alive reports whether the node is serving.
func (d *DataNode) Alive() bool { return d.alive }

type fileMeta struct {
	name      string
	blocks    []BlockID
	size      int64
	synthetic bool
}

// BlockLocation describes one block of a file: its byte range within
// the file and the datanodes holding replicas.
type BlockLocation struct {
	Block  BlockID
	Offset int64 // offset of the block within the file
	Size   int64
	Hosts  []string // datanode names, primary first
}

// NameNode is the metadata master. All mutating operations go through
// it, as in HDFS ("the master process manages the global name space
// and controls the operations on files").
type NameNode struct {
	mu          sync.Mutex
	blockSize   int64
	replication int
	store       BlockStore
	files       map[string]*fileMeta
	nodes       map[string]*DataNode
	nodeOrder   []string // registration order, for deterministic placement
	locations   map[BlockID][]string
	blockSizes  map[BlockID]int64
	hasData     map[BlockID]bool // false: synthetic (metadata-only) block
	nextBlock   BlockID
}

// Option customizes NewNameNode.
type Option func(*NameNode)

// WithBlockStore selects the block payload store (default: all in
// memory). The NameNode owns the store after construction; Close
// releases it.
func WithBlockStore(bs BlockStore) Option {
	return func(nn *NameNode) { nn.store = bs }
}

// NewNameNode creates a NameNode with the given block size and
// replication factor (the paper: 64 MB blocks, replication 1).
func NewNameNode(blockSize int64, replication int, opts ...Option) (*NameNode, error) {
	if blockSize <= 0 {
		return nil, fmt.Errorf("hdfs: block size %d must be positive", blockSize)
	}
	if replication < 1 {
		return nil, ErrBadReplFactor
	}
	nn := &NameNode{
		blockSize:   blockSize,
		replication: replication,
		files:       make(map[string]*fileMeta),
		nodes:       make(map[string]*DataNode),
		locations:   make(map[BlockID][]string),
		blockSizes:  make(map[BlockID]int64),
		hasData:     make(map[BlockID]bool),
	}
	for _, o := range opts {
		o(nn)
	}
	if nn.store == nil {
		nn.store = NewMemBlockStore()
	}
	return nn, nil
}

// Close releases the block store (spill files, when the store is
// disk-backed). The file system is unusable afterwards.
func (nn *NameNode) Close() error {
	nn.mu.Lock()
	defer nn.mu.Unlock()
	return nn.store.Close()
}

// BlockSize returns the configured block size.
func (nn *NameNode) BlockSize() int64 { return nn.blockSize }

// Replication returns the configured replication factor.
func (nn *NameNode) Replication() int { return nn.replication }

// RegisterDataNode adds a datanode to the cluster on the flat default
// rack.
func (nn *NameNode) RegisterDataNode(name string) (*DataNode, error) {
	return nn.RegisterDataNodeAt(name, topo.DefaultRack)
}

// RegisterDataNodeAt adds a datanode on the named rack ("" reads as
// topo.DefaultRack). Placement and repair spread replicas across
// racks, so losing one rack cannot take every copy of a block.
func (nn *NameNode) RegisterDataNodeAt(name, rack string) (*DataNode, error) {
	if rack == "" {
		rack = topo.DefaultRack
	}
	nn.mu.Lock()
	defer nn.mu.Unlock()
	if _, ok := nn.nodes[name]; ok {
		return nil, fmt.Errorf("hdfs: datanode %q already registered", name)
	}
	d := &DataNode{Name: name, Rack: rack, blocks: make(map[BlockID]int64), alive: true}
	nn.nodes[name] = d
	nn.nodeOrder = append(nn.nodeOrder, name)
	return d, nil
}

// DataNodes returns the names of live datanodes in registration order.
func (nn *NameNode) DataNodes() []string {
	nn.mu.Lock()
	defer nn.mu.Unlock()
	var out []string
	for _, n := range nn.nodeOrder {
		if nn.nodes[n].alive {
			out = append(out, n)
		}
	}
	return out
}

// liveNodes returns live datanodes, least-loaded first (stable on
// registration order for determinism).
func (nn *NameNode) liveNodes() []*DataNode {
	var out []*DataNode
	for _, n := range nn.nodeOrder {
		if d := nn.nodes[n]; d.alive {
			out = append(out, d)
		}
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].used < out[j].used })
	return out
}

// place chooses replica hosts for a new block: the preferred node
// first (HDFS writes the first replica on the writer's node), then
// rack-spread over the rest — each further replica prefers the
// least-loaded node on a rack no earlier replica covers, falling back
// to least-loaded anywhere once every rack is covered. On a flat
// topology this degenerates to the historical least-loaded order.
func (nn *NameNode) place(preferred string) ([]*DataNode, error) {
	live := nn.liveNodes()
	if len(live) == 0 {
		return nil, ErrNoDataNodes
	}
	var chosen []*DataNode
	if preferred != "" {
		if d, ok := nn.nodes[preferred]; ok && d.alive {
			chosen = append(chosen, d)
		}
	}
	chosen = nn.spreadOver(live, chosen, nn.replication)
	return chosen, nil
}

// spreadOver extends chosen up to want replicas from candidates
// (least-loaded first), preferring nodes on racks chosen doesn't cover
// yet. Callers hold nn.mu.
func (nn *NameNode) spreadOver(candidates, chosen []*DataNode, want int) []*DataNode {
	covered := make(map[string]bool, len(chosen))
	taken := make(map[*DataNode]bool, len(chosen))
	for _, c := range chosen {
		covered[c.Rack] = true
		taken[c] = true
	}
	for len(chosen) < want {
		var pick *DataNode
		for _, d := range candidates {
			if !taken[d] && !covered[d.Rack] {
				pick = d
				break
			}
		}
		if pick == nil {
			for _, d := range candidates {
				if !taken[d] {
					pick = d
					break
				}
			}
		}
		if pick == nil {
			break
		}
		chosen = append(chosen, pick)
		covered[pick.Rack] = true
		taken[pick] = true
	}
	return chosen
}

// addSyntheticBlock registers a metadata-only block (no payload, no
// store traffic). Callers hold nn.mu.
func (nn *NameNode) addSyntheticBlock(f *fileMeta, size int64, preferred string) error {
	id := nn.nextBlock
	nn.nextBlock++
	return nn.commitBlock(f, id, size, false, preferred)
}

// commitBlock registers a block's replicas on the chosen nodes and
// appends it to the file. For data blocks the payload is already in
// the block store under id, so a reader can never observe registered
// metadata without its bytes. Callers hold nn.mu.
func (nn *NameNode) commitBlock(f *fileMeta, id BlockID, size int64, hasData bool, preferred string) error {
	hosts, err := nn.place(preferred)
	if err != nil {
		return err
	}
	if hasData {
		nn.hasData[id] = true
	}
	var names []string
	for _, d := range hosts {
		d.blocks[id] = size
		d.used += size
		names = append(names, d.Name)
	}
	nn.locations[id] = names
	nn.blockSizes[id] = size
	f.blocks = append(f.blocks, id)
	f.size += size
	return nil
}

// storeBlock is the data-block write path: mint an ID, store the
// payload OUTSIDE nn.mu — a spill-backed store may compress and hit
// the disk, and that work must not stall every concurrent metadata
// operation — then commit the metadata under the lock.
func (nn *NameNode) storeBlock(f *fileMeta, data []byte, preferred string) error {
	nn.mu.Lock()
	id := nn.nextBlock
	nn.nextBlock++
	nn.mu.Unlock()
	if err := nn.store.Put(id, data); err != nil {
		return err
	}
	nn.mu.Lock()
	defer nn.mu.Unlock()
	if err := nn.commitBlock(f, id, int64(len(data)), true, preferred); err != nil {
		nn.store.Delete(id)
		return err
	}
	return nil
}

// CreateSynthetic creates a file of the given size whose blocks carry
// no data. Blocks are spread across datanodes by the placement policy.
func (nn *NameNode) CreateSynthetic(name string, size int64) error {
	return nn.CreateSyntheticAt(name, size, "")
}

// CreateSyntheticAt is CreateSynthetic with a preferred primary
// replica host — the HDFS writer-locality rule for data ingested on a
// specific node ("HDFS can decide to change the blocks location in
// order to favour local accesses").
func (nn *NameNode) CreateSyntheticAt(name string, size int64, preferredNode string) error {
	nn.mu.Lock()
	defer nn.mu.Unlock()
	if _, ok := nn.files[name]; ok {
		return fmt.Errorf("%w: %s", ErrExists, name)
	}
	if size < 0 {
		return fmt.Errorf("hdfs: negative file size %d", size)
	}
	f := &fileMeta{name: name, synthetic: true}
	remaining := size
	for remaining > 0 {
		n := nn.blockSize
		if remaining < n {
			n = remaining
		}
		if err := nn.addSyntheticBlock(f, n, preferredNode); err != nil {
			return err
		}
		remaining -= n
	}
	nn.files[name] = f
	return nil
}

// Writer streams data into a new file, cutting blocks at the block
// size. Close finalizes the file. The internal buffer never holds more
// than one block plus the largest single Write: emitted blocks advance
// an offset cursor and the consumed prefix is dropped with one copy
// per call, so writing an n-byte file costs O(n), not O(n²).
type Writer struct {
	nn        *NameNode
	f         *fileMeta
	buf       []byte
	preferred string
	closed    bool
}

// Create opens a writer for a new file. preferredNode, when not empty,
// receives the first replica of every block (writer locality).
func (nn *NameNode) Create(name, preferredNode string) (*Writer, error) {
	nn.mu.Lock()
	defer nn.mu.Unlock()
	if _, ok := nn.files[name]; ok {
		return nil, fmt.Errorf("%w: %s", ErrExists, name)
	}
	f := &fileMeta{name: name}
	nn.files[name] = f
	return &Writer{nn: nn, f: f, preferred: preferredNode}, nil
}

// Write implements io.Writer. A Writer is not goroutine-safe
// (standard io.Writer contract); blockSize is immutable, and each
// emitted block takes the NameNode lock only for its metadata commit.
func (w *Writer) Write(p []byte) (int, error) {
	if w.closed {
		return 0, errors.New("hdfs: write on closed writer")
	}
	written := len(p)
	bs := int(w.nn.blockSize)
	// Full blocks available directly from p skip the buffer entirely
	// (the block store copies what it keeps).
	if len(w.buf) == 0 {
		for len(p) >= bs {
			if err := w.nn.storeBlock(w.f, p[:bs], w.preferred); err != nil {
				return 0, err
			}
			p = p[bs:]
		}
	}
	w.buf = append(w.buf, p...)
	start := 0
	for len(w.buf)-start >= bs {
		if err := w.nn.storeBlock(w.f, w.buf[start:start+bs], w.preferred); err != nil {
			return 0, err
		}
		start += bs
	}
	if start > 0 {
		n := copy(w.buf, w.buf[start:])
		w.buf = w.buf[:n]
	}
	return written, nil
}

// Close flushes the final partial block.
func (w *Writer) Close() error {
	if w.closed {
		return nil
	}
	w.closed = true
	if len(w.buf) > 0 {
		if err := w.nn.storeBlock(w.f, w.buf, w.preferred); err != nil {
			return err
		}
		w.buf = nil
	}
	return nil
}

// WriteFile creates name with the given contents in one call.
func (nn *NameNode) WriteFile(name string, data []byte, preferredNode string) error {
	w, err := nn.Create(name, preferredNode)
	if err != nil {
		return err
	}
	if _, err := w.Write(data); err != nil {
		return err
	}
	return w.Close()
}

// copyBufBytes caps CreateFrom's transfer buffer: large enough to
// amortize call overhead, far below a 64 MB block.
const copyBufBytes = 256 * 1024

// CreateFrom streams r into a new file, returning the bytes written.
// Memory use is bounded by the transfer buffer plus the writer's
// block buffer regardless of the stream's length — the ingest path
// for datasets larger than RAM.
func (nn *NameNode) CreateFrom(name, preferredNode string, r io.Reader) (int64, error) {
	w, err := nn.Create(name, preferredNode)
	if err != nil {
		return 0, err
	}
	buf := make([]byte, copyBufBytes)
	n, err := io.CopyBuffer(w, r, buf)
	if err != nil {
		return n, err
	}
	return n, w.Close()
}

// Exists reports whether the file exists.
func (nn *NameNode) Exists(name string) bool {
	nn.mu.Lock()
	defer nn.mu.Unlock()
	_, ok := nn.files[name]
	return ok
}

// FileSize returns the file's length in bytes.
func (nn *NameNode) FileSize(name string) (int64, error) {
	nn.mu.Lock()
	defer nn.mu.Unlock()
	f, ok := nn.files[name]
	if !ok {
		return 0, fmt.Errorf("%w: %s", ErrNotFound, name)
	}
	return f.size, nil
}

// Delete removes a file, frees its replicas and drops its payloads
// from the block store.
func (nn *NameNode) Delete(name string) error {
	nn.mu.Lock()
	defer nn.mu.Unlock()
	f, ok := nn.files[name]
	if !ok {
		return fmt.Errorf("%w: %s", ErrNotFound, name)
	}
	for _, id := range f.blocks {
		for _, host := range nn.locations[id] {
			if d, ok := nn.nodes[host]; ok {
				if size, ok := d.blocks[id]; ok {
					d.used -= size
					delete(d.blocks, id)
				}
			}
		}
		nn.store.Delete(id)
		delete(nn.locations, id)
		delete(nn.blockSizes, id)
		delete(nn.hasData, id)
	}
	delete(nn.files, name)
	return nil
}

// List returns all file names, sorted.
func (nn *NameNode) List() []string {
	nn.mu.Lock()
	defer nn.mu.Unlock()
	var out []string
	for name := range nn.files {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Locations returns the file's block layout with live replica hosts.
func (nn *NameNode) Locations(name string) ([]BlockLocation, error) {
	nn.mu.Lock()
	defer nn.mu.Unlock()
	f, ok := nn.files[name]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNotFound, name)
	}
	var out []BlockLocation
	var off int64
	for _, id := range f.blocks {
		var hosts []string
		for _, h := range nn.locations[id] {
			if d, ok := nn.nodes[h]; ok && d.alive {
				hosts = append(hosts, h)
			}
		}
		out = append(out, BlockLocation{Block: id, Offset: off, Size: nn.blockSizes[id], Hosts: hosts})
		off += nn.blockSizes[id]
	}
	return out, nil
}

// ReadBlock fetches a block's data from a specific datanode. The
// returned slice may alias the store's copy and must be treated as
// immutable.
func (nn *NameNode) ReadBlock(id BlockID, host string) ([]byte, error) {
	nn.mu.Lock()
	d, ok := nn.nodes[host]
	if !ok {
		nn.mu.Unlock()
		return nil, fmt.Errorf("%w: %s", ErrUnknownNode, host)
	}
	if !d.alive {
		nn.mu.Unlock()
		return nil, fmt.Errorf("%w: %s", ErrNodeDead, host)
	}
	if _, ok := d.blocks[id]; !ok {
		nn.mu.Unlock()
		return nil, fmt.Errorf("hdfs: block %d not on %s", id, host)
	}
	if !nn.hasData[id] {
		nn.mu.Unlock()
		return nil, ErrSynthetic
	}
	store := nn.store
	nn.mu.Unlock()
	return store.Get(id)
}

// Reader reads a file's real data sequentially, preferring replicas on
// preferredNode (locality) when available. A replica that dies
// mid-read fails over to the remaining replicas, refreshing the block
// layout once (re-replication after a node death can mint new hosts)
// before giving up.
type Reader struct {
	nn        *NameNode
	name      string
	locs      []BlockLocation
	preferred string
	blockIdx  int
	blockOff  int
	current   []byte
}

// Open returns a sequential reader over name's data.
func (nn *NameNode) Open(name, preferredNode string) (*Reader, error) {
	nn.mu.Lock()
	f, ok := nn.files[name]
	synthetic := ok && f.synthetic
	nn.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNotFound, name)
	}
	if synthetic {
		return nil, ErrSynthetic
	}
	locs, err := nn.Locations(name)
	if err != nil {
		return nil, err
	}
	return &Reader{nn: nn, name: name, locs: locs, preferred: preferredNode}, nil
}

// fetchCurrent loads the reader's current block, failing over along
// the replica list and refreshing stale locations once.
func (r *Reader) fetchCurrent() ([]byte, error) {
	try := func(loc BlockLocation) ([]byte, error) {
		hosts := loc.Hosts
		if len(hosts) == 0 {
			return nil, fmt.Errorf("%w: block %d", ErrBlockLost, loc.Block)
		}
		ordered := make([]string, 0, len(hosts))
		for _, h := range hosts {
			if h == r.preferred {
				ordered = append(ordered, h)
			}
		}
		for _, h := range hosts {
			if h != r.preferred {
				ordered = append(ordered, h)
			}
		}
		var lastErr error
		for _, h := range ordered {
			data, err := r.nn.ReadBlock(loc.Block, h)
			if err == nil {
				return data, nil
			}
			lastErr = err
		}
		return nil, lastErr
	}
	data, err := try(r.locs[r.blockIdx])
	if err == nil {
		return data, nil
	}
	// The cached layout may predate a node death; re-replication can
	// have minted fresh replicas since.
	locs, lerr := r.nn.Locations(r.name)
	if lerr != nil || r.blockIdx >= len(locs) {
		return nil, err
	}
	r.locs = locs
	return try(locs[r.blockIdx])
}

// Read implements io.Reader.
func (r *Reader) Read(p []byte) (int, error) {
	for {
		if r.current == nil {
			if r.blockIdx >= len(r.locs) {
				return 0, io.EOF
			}
			data, err := r.fetchCurrent()
			if err != nil {
				return 0, err
			}
			r.current = data
			r.blockOff = 0
		}
		n := copy(p, r.current[r.blockOff:])
		r.blockOff += n
		if r.blockOff >= len(r.current) {
			r.current = nil
			r.blockIdx++
		}
		if n > 0 || len(p) == 0 {
			return n, nil
		}
	}
}

// ReadFile returns the whole file's contents.
func (nn *NameNode) ReadFile(name string) ([]byte, error) {
	r, err := nn.Open(name, "")
	if err != nil {
		return nil, err
	}
	return io.ReadAll(r)
}

// KillDataNode marks a node dead. Its replicas become unavailable; the
// NameNode re-replicates blocks that still have a live copy elsewhere
// (with replication 1, as in the paper, a dead node means lost blocks,
// which Locations will report as host-less). Because replicas share
// one stored payload, re-replication is a metadata move — no payload
// copy.
func (nn *NameNode) KillDataNode(name string) error {
	nn.mu.Lock()
	defer nn.mu.Unlock()
	d, ok := nn.nodes[name]
	if !ok {
		return fmt.Errorf("%w: %s", ErrUnknownNode, name)
	}
	if !d.alive {
		return fmt.Errorf("%w: %s", ErrNodeDead, name)
	}
	d.alive = false
	// Re-replicate under-replicated blocks from surviving replicas,
	// spreading the repairs back across racks.
	for id, hosts := range nn.locations {
		var liveHosts []*DataNode
		for _, h := range hosts {
			if n := nn.nodes[h]; n.alive {
				liveHosts = append(liveHosts, n)
			}
		}
		if len(liveHosts) == 0 || len(liveHosts) >= nn.replication {
			continue
		}
		nn.repairBlock(id, liveHosts)
	}
	return nil
}

// repairBlock extends a degraded block's replica set back toward the
// replication target, preferring uncovered racks, and rewrites its
// location record. Replicas share one stored payload, so the repair is
// a metadata move. Callers hold nn.mu.
func (nn *NameNode) repairBlock(id BlockID, liveHosts []*DataNode) {
	size := liveHosts[0].blocks[id]
	var candidates []*DataNode
	for _, cand := range nn.liveNodes() {
		if _, has := cand.blocks[id]; !has {
			candidates = append(candidates, cand)
		}
	}
	grown := nn.spreadOver(candidates, liveHosts, nn.replication)
	for _, h := range grown[len(liveHosts):] {
		h.blocks[id] = size
		h.used += size
	}
	names := make([]string, 0, len(grown))
	for _, h := range grown {
		names = append(names, h.Name)
	}
	nn.locations[id] = names
}

// DecommissionDataNode retires a node gracefully: every replica it
// holds is first re-homed onto the remaining live nodes (rack-spread;
// a metadata move, since replicas share one stored payload), then the
// node leaves the cluster entirely. Unlike KillDataNode, no block
// loses availability — with no other node to hold a copy the
// decommission is refused.
func (nn *NameNode) DecommissionDataNode(name string) error {
	nn.mu.Lock()
	defer nn.mu.Unlock()
	d, ok := nn.nodes[name]
	if !ok {
		return fmt.Errorf("%w: %s", ErrUnknownNode, name)
	}
	if !d.alive {
		return fmt.Errorf("%w: %s", ErrNodeDead, name)
	}
	// Out of placement while the drain runs.
	d.alive = false
	for id := range d.blocks {
		var liveHosts []*DataNode
		for _, h := range nn.locations[id] {
			if n := nn.nodes[h]; n.alive {
				liveHosts = append(liveHosts, n)
			}
		}
		if len(liveHosts) == 0 {
			// This node holds the only copy: it must land somewhere
			// before the node may leave.
			var candidates []*DataNode
			for _, cand := range nn.liveNodes() {
				if _, has := cand.blocks[id]; !has {
					candidates = append(candidates, cand)
				}
			}
			if len(candidates) == 0 {
				d.alive = true
				return fmt.Errorf("%w: decommission %s would lose block %d", ErrNoDataNodes, name, id)
			}
			t := candidates[0]
			size := d.blocks[id]
			t.blocks[id] = size
			t.used += size
			liveHosts = append(liveHosts, t)
		}
		if len(liveHosts) < nn.replication {
			nn.repairBlock(id, liveHosts)
		} else {
			names := make([]string, 0, len(liveHosts))
			for _, h := range liveHosts {
				names = append(names, h.Name)
			}
			nn.locations[id] = names
		}
		d.used -= d.blocks[id]
	}
	delete(nn.nodes, name)
	for i, n := range nn.nodeOrder {
		if n == name {
			nn.nodeOrder = append(nn.nodeOrder[:i], nn.nodeOrder[i+1:]...)
			break
		}
	}
	return nil
}

// TotalBytes returns the bytes stored across live datanodes (replicas
// counted separately).
func (nn *NameNode) TotalBytes() int64 {
	nn.mu.Lock()
	defer nn.mu.Unlock()
	var total int64
	for _, d := range nn.nodes {
		if d.alive {
			total += d.used
		}
	}
	return total
}
