// Package hdfs is a from-scratch, in-memory implementation of the
// Hadoop Distributed File System's architecture as the paper uses it
// (§III-A): a master NameNode owning the namespace and block map, and
// DataNodes storing fixed-size blocks on their local disks, with
// configurable replication and locality-aware block placement.
//
// Files can carry real bytes (live execution, examples, tests) or be
// synthetic — metadata and sizes only — so the simulated experiments
// can describe the paper's 120 GB working sets without allocating
// them.
package hdfs

import (
	"errors"
	"fmt"
	"io"
	"sort"
	"sync"
)

// Errors returned by the file system.
var (
	ErrNotFound      = errors.New("hdfs: file not found")
	ErrExists        = errors.New("hdfs: file already exists")
	ErrNoDataNodes   = errors.New("hdfs: no live datanodes")
	ErrSynthetic     = errors.New("hdfs: synthetic file has no readable data")
	ErrBlockLost     = errors.New("hdfs: block has no live replica")
	ErrUnknownNode   = errors.New("hdfs: unknown datanode")
	ErrNodeDead      = errors.New("hdfs: datanode is dead")
	ErrBadReplFactor = errors.New("hdfs: replication factor must be >= 1")
)

// BlockID identifies one block cluster-wide.
type BlockID int64

// Block is a stored block replica. Data is nil for synthetic blocks.
type Block struct {
	ID   BlockID
	Size int64
	Data []byte
}

// DataNode stores block replicas for one cluster node.
type DataNode struct {
	Name   string
	blocks map[BlockID]*Block
	used   int64
	alive  bool
}

// UsedBytes returns the bytes stored on this datanode.
func (d *DataNode) UsedBytes() int64 { return d.used }

// BlockCount returns the number of replicas stored here.
func (d *DataNode) BlockCount() int { return len(d.blocks) }

// Alive reports whether the node is serving.
func (d *DataNode) Alive() bool { return d.alive }

type fileMeta struct {
	name      string
	blocks    []BlockID
	size      int64
	synthetic bool
}

// BlockLocation describes one block of a file: its byte range within
// the file and the datanodes holding replicas.
type BlockLocation struct {
	Block  BlockID
	Offset int64 // offset of the block within the file
	Size   int64
	Hosts  []string // datanode names, primary first
}

// NameNode is the metadata master. All mutating operations go through
// it, as in HDFS ("the master process manages the global name space
// and controls the operations on files").
type NameNode struct {
	mu          sync.Mutex
	blockSize   int64
	replication int
	files       map[string]*fileMeta
	nodes       map[string]*DataNode
	nodeOrder   []string // registration order, for deterministic placement
	locations   map[BlockID][]string
	blockSizes  map[BlockID]int64
	nextBlock   BlockID
}

// NewNameNode creates a NameNode with the given block size and
// replication factor (the paper: 64 MB blocks, replication 1).
func NewNameNode(blockSize int64, replication int) (*NameNode, error) {
	if blockSize <= 0 {
		return nil, fmt.Errorf("hdfs: block size %d must be positive", blockSize)
	}
	if replication < 1 {
		return nil, ErrBadReplFactor
	}
	return &NameNode{
		blockSize:   blockSize,
		replication: replication,
		files:       make(map[string]*fileMeta),
		nodes:       make(map[string]*DataNode),
		locations:   make(map[BlockID][]string),
		blockSizes:  make(map[BlockID]int64),
	}, nil
}

// BlockSize returns the configured block size.
func (nn *NameNode) BlockSize() int64 { return nn.blockSize }

// Replication returns the configured replication factor.
func (nn *NameNode) Replication() int { return nn.replication }

// RegisterDataNode adds a datanode to the cluster.
func (nn *NameNode) RegisterDataNode(name string) (*DataNode, error) {
	nn.mu.Lock()
	defer nn.mu.Unlock()
	if _, ok := nn.nodes[name]; ok {
		return nil, fmt.Errorf("hdfs: datanode %q already registered", name)
	}
	d := &DataNode{Name: name, blocks: make(map[BlockID]*Block), alive: true}
	nn.nodes[name] = d
	nn.nodeOrder = append(nn.nodeOrder, name)
	return d, nil
}

// DataNodes returns the names of live datanodes in registration order.
func (nn *NameNode) DataNodes() []string {
	nn.mu.Lock()
	defer nn.mu.Unlock()
	var out []string
	for _, n := range nn.nodeOrder {
		if nn.nodes[n].alive {
			out = append(out, n)
		}
	}
	return out
}

// liveNodes returns live datanodes, least-loaded first (stable on
// registration order for determinism).
func (nn *NameNode) liveNodes() []*DataNode {
	var out []*DataNode
	for _, n := range nn.nodeOrder {
		if d := nn.nodes[n]; d.alive {
			out = append(out, d)
		}
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].used < out[j].used })
	return out
}

// place chooses replica hosts for a new block: the preferred node
// first (HDFS writes the first replica on the writer's node), then the
// least-loaded other nodes.
func (nn *NameNode) place(preferred string) ([]*DataNode, error) {
	live := nn.liveNodes()
	if len(live) == 0 {
		return nil, ErrNoDataNodes
	}
	var chosen []*DataNode
	if preferred != "" {
		if d, ok := nn.nodes[preferred]; ok && d.alive {
			chosen = append(chosen, d)
		}
	}
	for _, d := range live {
		if len(chosen) >= nn.replication {
			break
		}
		already := false
		for _, c := range chosen {
			if c == d {
				already = true
				break
			}
		}
		if !already {
			chosen = append(chosen, d)
		}
	}
	return chosen, nil
}

// addBlock registers a block's replicas on the chosen nodes.
func (nn *NameNode) addBlock(f *fileMeta, size int64, data []byte, preferred string) error {
	hosts, err := nn.place(preferred)
	if err != nil {
		return err
	}
	id := nn.nextBlock
	nn.nextBlock++
	var names []string
	for _, d := range hosts {
		blk := &Block{ID: id, Size: size}
		if data != nil {
			blk.Data = append([]byte(nil), data...)
		}
		d.blocks[id] = blk
		d.used += size
		names = append(names, d.Name)
	}
	nn.locations[id] = names
	nn.blockSizes[id] = size
	f.blocks = append(f.blocks, id)
	f.size += size
	return nil
}

// CreateSynthetic creates a file of the given size whose blocks carry
// no data. Blocks are spread across datanodes by the placement policy.
func (nn *NameNode) CreateSynthetic(name string, size int64) error {
	return nn.CreateSyntheticAt(name, size, "")
}

// CreateSyntheticAt is CreateSynthetic with a preferred primary
// replica host — the HDFS writer-locality rule for data ingested on a
// specific node ("HDFS can decide to change the blocks location in
// order to favour local accesses").
func (nn *NameNode) CreateSyntheticAt(name string, size int64, preferredNode string) error {
	nn.mu.Lock()
	defer nn.mu.Unlock()
	if _, ok := nn.files[name]; ok {
		return fmt.Errorf("%w: %s", ErrExists, name)
	}
	if size < 0 {
		return fmt.Errorf("hdfs: negative file size %d", size)
	}
	f := &fileMeta{name: name, synthetic: true}
	remaining := size
	for remaining > 0 {
		n := nn.blockSize
		if remaining < n {
			n = remaining
		}
		if err := nn.addBlock(f, n, nil, preferredNode); err != nil {
			return err
		}
		remaining -= n
	}
	nn.files[name] = f
	return nil
}

// Writer streams data into a new file, cutting blocks at the block
// size. Close finalizes the file.
type Writer struct {
	nn        *NameNode
	f         *fileMeta
	buf       []byte
	preferred string
	closed    bool
}

// Create opens a writer for a new file. preferredNode, when not empty,
// receives the first replica of every block (writer locality).
func (nn *NameNode) Create(name, preferredNode string) (*Writer, error) {
	nn.mu.Lock()
	defer nn.mu.Unlock()
	if _, ok := nn.files[name]; ok {
		return nil, fmt.Errorf("%w: %s", ErrExists, name)
	}
	f := &fileMeta{name: name}
	nn.files[name] = f
	return &Writer{nn: nn, f: f, preferred: preferredNode}, nil
}

// Write implements io.Writer.
func (w *Writer) Write(p []byte) (int, error) {
	if w.closed {
		return 0, errors.New("hdfs: write on closed writer")
	}
	w.buf = append(w.buf, p...)
	w.nn.mu.Lock()
	defer w.nn.mu.Unlock()
	for int64(len(w.buf)) >= w.nn.blockSize {
		if err := w.nn.addBlock(w.f, w.nn.blockSize, w.buf[:w.nn.blockSize], w.preferred); err != nil {
			return 0, err
		}
		w.buf = append([]byte(nil), w.buf[w.nn.blockSize:]...)
	}
	return len(p), nil
}

// Close flushes the final partial block.
func (w *Writer) Close() error {
	if w.closed {
		return nil
	}
	w.closed = true
	w.nn.mu.Lock()
	defer w.nn.mu.Unlock()
	if len(w.buf) > 0 {
		if err := w.nn.addBlock(w.f, int64(len(w.buf)), w.buf, w.preferred); err != nil {
			return err
		}
		w.buf = nil
	}
	return nil
}

// WriteFile creates name with the given contents in one call.
func (nn *NameNode) WriteFile(name string, data []byte, preferredNode string) error {
	w, err := nn.Create(name, preferredNode)
	if err != nil {
		return err
	}
	if _, err := w.Write(data); err != nil {
		return err
	}
	return w.Close()
}

// Exists reports whether the file exists.
func (nn *NameNode) Exists(name string) bool {
	nn.mu.Lock()
	defer nn.mu.Unlock()
	_, ok := nn.files[name]
	return ok
}

// FileSize returns the file's length in bytes.
func (nn *NameNode) FileSize(name string) (int64, error) {
	nn.mu.Lock()
	defer nn.mu.Unlock()
	f, ok := nn.files[name]
	if !ok {
		return 0, fmt.Errorf("%w: %s", ErrNotFound, name)
	}
	return f.size, nil
}

// Delete removes a file and frees its replicas.
func (nn *NameNode) Delete(name string) error {
	nn.mu.Lock()
	defer nn.mu.Unlock()
	f, ok := nn.files[name]
	if !ok {
		return fmt.Errorf("%w: %s", ErrNotFound, name)
	}
	for _, id := range f.blocks {
		for _, host := range nn.locations[id] {
			if d, ok := nn.nodes[host]; ok {
				if blk, ok := d.blocks[id]; ok {
					d.used -= blk.Size
					delete(d.blocks, id)
				}
			}
		}
		delete(nn.locations, id)
		delete(nn.blockSizes, id)
	}
	delete(nn.files, name)
	return nil
}

// List returns all file names, sorted.
func (nn *NameNode) List() []string {
	nn.mu.Lock()
	defer nn.mu.Unlock()
	var out []string
	for name := range nn.files {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Locations returns the file's block layout with live replica hosts.
func (nn *NameNode) Locations(name string) ([]BlockLocation, error) {
	nn.mu.Lock()
	defer nn.mu.Unlock()
	f, ok := nn.files[name]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNotFound, name)
	}
	var out []BlockLocation
	var off int64
	for _, id := range f.blocks {
		var hosts []string
		for _, h := range nn.locations[id] {
			if d, ok := nn.nodes[h]; ok && d.alive {
				hosts = append(hosts, h)
			}
		}
		out = append(out, BlockLocation{Block: id, Offset: off, Size: nn.blockSizes[id], Hosts: hosts})
		off += nn.blockSizes[id]
	}
	return out, nil
}

// ReadBlock fetches a block's data from a specific datanode.
func (nn *NameNode) ReadBlock(id BlockID, host string) ([]byte, error) {
	nn.mu.Lock()
	defer nn.mu.Unlock()
	d, ok := nn.nodes[host]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrUnknownNode, host)
	}
	if !d.alive {
		return nil, fmt.Errorf("%w: %s", ErrNodeDead, host)
	}
	blk, ok := d.blocks[id]
	if !ok {
		return nil, fmt.Errorf("hdfs: block %d not on %s", id, host)
	}
	if blk.Data == nil {
		return nil, ErrSynthetic
	}
	return blk.Data, nil
}

// Reader reads a file's real data sequentially, preferring replicas on
// preferredNode (locality) when available.
type Reader struct {
	nn        *NameNode
	locs      []BlockLocation
	preferred string
	blockIdx  int
	blockOff  int
	current   []byte
}

// Open returns a sequential reader over name's data.
func (nn *NameNode) Open(name, preferredNode string) (*Reader, error) {
	nn.mu.Lock()
	f, ok := nn.files[name]
	synthetic := ok && f.synthetic
	nn.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNotFound, name)
	}
	if synthetic {
		return nil, ErrSynthetic
	}
	locs, err := nn.Locations(name)
	if err != nil {
		return nil, err
	}
	return &Reader{nn: nn, locs: locs, preferred: preferredNode}, nil
}

// Read implements io.Reader.
func (r *Reader) Read(p []byte) (int, error) {
	for {
		if r.current == nil {
			if r.blockIdx >= len(r.locs) {
				return 0, io.EOF
			}
			loc := r.locs[r.blockIdx]
			if len(loc.Hosts) == 0 {
				return 0, fmt.Errorf("%w: block %d", ErrBlockLost, loc.Block)
			}
			host := loc.Hosts[0]
			for _, h := range loc.Hosts {
				if h == r.preferred {
					host = h
					break
				}
			}
			data, err := r.nn.ReadBlock(loc.Block, host)
			if err != nil {
				return 0, err
			}
			r.current = data
			r.blockOff = 0
		}
		n := copy(p, r.current[r.blockOff:])
		r.blockOff += n
		if r.blockOff >= len(r.current) {
			r.current = nil
			r.blockIdx++
		}
		if n > 0 || len(p) == 0 {
			return n, nil
		}
	}
}

// ReadFile returns the whole file's contents.
func (nn *NameNode) ReadFile(name string) ([]byte, error) {
	r, err := nn.Open(name, "")
	if err != nil {
		return nil, err
	}
	return io.ReadAll(r)
}

// KillDataNode marks a node dead. Its replicas become unavailable; the
// NameNode re-replicates blocks that still have a live copy elsewhere
// (with replication 1, as in the paper, a dead node means lost blocks,
// which Locations will report as host-less).
func (nn *NameNode) KillDataNode(name string) error {
	nn.mu.Lock()
	defer nn.mu.Unlock()
	d, ok := nn.nodes[name]
	if !ok {
		return fmt.Errorf("%w: %s", ErrUnknownNode, name)
	}
	if !d.alive {
		return fmt.Errorf("%w: %s", ErrNodeDead, name)
	}
	d.alive = false
	// Re-replicate under-replicated blocks from surviving replicas.
	for id, hosts := range nn.locations {
		var liveHosts []*DataNode
		for _, h := range hosts {
			if n := nn.nodes[h]; n.alive {
				liveHosts = append(liveHosts, n)
			}
		}
		if len(liveHosts) == 0 || len(liveHosts) >= nn.replication {
			continue
		}
		src := liveHosts[0].blocks[id]
		for _, cand := range nn.liveNodes() {
			if len(liveHosts) >= nn.replication {
				break
			}
			if _, has := cand.blocks[id]; has {
				continue
			}
			blk := &Block{ID: id, Size: src.Size}
			if src.Data != nil {
				blk.Data = append([]byte(nil), src.Data...)
			}
			cand.blocks[id] = blk
			cand.used += src.Size
			liveHosts = append(liveHosts, cand)
		}
		var names []string
		for _, h := range liveHosts {
			names = append(names, h.Name)
		}
		nn.locations[id] = names
	}
	return nil
}

// TotalBytes returns the bytes stored across live datanodes (replicas
// counted separately).
func (nn *NameNode) TotalBytes() int64 {
	nn.mu.Lock()
	defer nn.mu.Unlock()
	var total int64
	for _, d := range nn.nodes {
		if d.alive {
			total += d.used
		}
	}
	return total
}
