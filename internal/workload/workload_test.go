package workload

import (
	"testing"

	"hetmr/internal/hadoop"
	"hetmr/internal/hdfs"
	"hetmr/internal/perfmodel"
)

func newFS(t *testing.T, nodes []string) *hdfs.NameNode {
	t.Helper()
	nn, err := hdfs.NewNameNode(perfmodel.HDFSBlockBytes, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range nodes {
		if _, err := nn.RegisterDataNode(n); err != nil {
			t.Fatal(err)
		}
	}
	return nn
}

func TestEncryptionDatasetLayout(t *testing.T) {
	nodes := []string{"node000", "node001", "node002"}
	nn := newFS(t, nodes)
	const perMapper = 1 << 30 // 1GB: 16 records of 64MB
	splits, err := EncryptionDataset(nn, nodes, 2, perMapper)
	if err != nil {
		t.Fatal(err)
	}
	if len(splits) != 6 {
		t.Fatalf("got %d splits, want 6 (3 nodes x 2 mappers)", len(splits))
	}
	for i, s := range splits {
		if s.Index != i {
			t.Errorf("split %d index %d", i, s.Index)
		}
		if got := s.InputBytes(); got != perMapper {
			t.Errorf("split %d has %d bytes, want %d", i, got, perMapper)
		}
		if len(s.Records) != 16 {
			t.Errorf("split %d has %d records, want 16 (64MB each)", i, len(s.Records))
		}
		wantNode := nodes[i/2]
		if len(s.PreferredHosts) != 1 || s.PreferredHosts[0] != wantNode {
			t.Errorf("split %d preferred %v, want [%s]", i, s.PreferredHosts, wantNode)
		}
		// Every record's data sits on the split's node: the locality
		// property the paper's loopback observation depends on.
		for _, r := range s.Records {
			local := false
			for _, h := range r.Hosts {
				if h == wantNode {
					local = true
				}
			}
			if !local {
				t.Errorf("split %d record not hosted on %s: %v", i, wantNode, r.Hosts)
			}
		}
	}
	if got := TotalBytes(splits); got != 6*perMapper {
		t.Errorf("TotalBytes = %d, want %d", got, 6*perMapper)
	}
	// Splits must drive a valid hadoop job.
	job := &hadoop.Job{Name: "enc", Splits: splits,
		MapperFor: hadoop.StaticMapperFor(hadoop.EmptyMapper{})}
	if err := job.Validate(); err != nil {
		t.Errorf("generated splits invalid: %v", err)
	}
}

func TestEncryptionDatasetPartialRecord(t *testing.T) {
	nodes := []string{"node000"}
	nn := newFS(t, nodes)
	// 100MB: one 64MB record plus one 36MB tail.
	splits, err := EncryptionDataset(nn, nodes, 1, 100<<20)
	if err != nil {
		t.Fatal(err)
	}
	if len(splits) != 1 || len(splits[0].Records) != 2 {
		t.Fatalf("splits = %+v", splits)
	}
	if splits[0].Records[1].Bytes != 36<<20 {
		t.Errorf("tail record = %d bytes", splits[0].Records[1].Bytes)
	}
}

func TestEncryptionDatasetValidation(t *testing.T) {
	nn := newFS(t, []string{"node000"})
	if _, err := EncryptionDataset(nn, nil, 2, 1); err == nil {
		t.Error("no nodes should fail")
	}
	if _, err := EncryptionDataset(nn, []string{"node000"}, 0, 1); err == nil {
		t.Error("zero mappers should fail")
	}
	if _, err := EncryptionDataset(nn, []string{"node000"}, 2, 0); err == nil {
		t.Error("zero bytes should fail")
	}
}

func TestEncryptionDatasetDistinctFiles(t *testing.T) {
	nodes := []string{"node000", "node001"}
	nn := newFS(t, nodes)
	if _, err := EncryptionDataset(nn, nodes, 2, 1<<20); err != nil {
		t.Fatal(err)
	}
	if got := len(nn.List()); got != 4 {
		t.Errorf("created %d files, want 4", got)
	}
	// A second generation on the same FS must fail (files exist), not
	// silently reuse stale data.
	if _, err := EncryptionDataset(nn, nodes, 2, 1<<20); err == nil {
		t.Error("regeneration over existing files should fail")
	}
}
