// Package workload generates the paper's evaluation datasets: the
// encryption working sets laid out per the paper's data-distribution
// model (Fig. 3 — split size FileSize/NumMappers, 64 MB records, data
// ingested locally so the locality scheduler can keep reads on the
// loopback path), and the Pi estimator's sample partitions.
package workload

import (
	"fmt"

	"hetmr/internal/hadoop"
	"hetmr/internal/hdfs"
	"hetmr/internal/perfmodel"
)

// EncryptionDataset creates the data-intensive working set on the DFS:
// one pinned sub-file per mapper (data ingested by the mapper's own
// node, giving the first replica writer locality), and returns one
// split per mapper whose records point at that node — the layout of
// the paper's Figure 3.
func EncryptionDataset(nn *hdfs.NameNode, nodes []string, mappersPerNode int,
	bytesPerMapper int64) ([]hadoop.Split, error) {
	if len(nodes) == 0 {
		return nil, fmt.Errorf("workload: no nodes")
	}
	if mappersPerNode <= 0 {
		return nil, fmt.Errorf("workload: mappersPerNode must be positive, got %d", mappersPerNode)
	}
	if bytesPerMapper <= 0 {
		return nil, fmt.Errorf("workload: bytesPerMapper must be positive, got %d", bytesPerMapper)
	}
	var splits []hadoop.Split
	idx := 0
	for _, node := range nodes {
		for m := 0; m < mappersPerNode; m++ {
			name := fmt.Sprintf("/enc/part-%05d", idx)
			if err := nn.CreateSyntheticAt(name, bytesPerMapper, node); err != nil {
				return nil, err
			}
			locs, err := nn.Locations(name)
			if err != nil {
				return nil, err
			}
			var records []hadoop.Record
			for _, loc := range locs {
				// One 64 MB record per 64 MB block (the paper's
				// record size matches the block size).
				for off := int64(0); off < loc.Size; off += perfmodel.RecordBytes {
					n := int64(perfmodel.RecordBytes)
					if off+n > loc.Size {
						n = loc.Size - off
					}
					records = append(records, hadoop.Record{Bytes: n, Hosts: loc.Hosts})
				}
			}
			splits = append(splits, hadoop.Split{
				Index:          idx,
				Records:        records,
				PreferredHosts: []string{node},
			})
			idx++
		}
	}
	return splits, nil
}

// TotalBytes sums the input bytes across splits.
func TotalBytes(splits []hadoop.Split) int64 {
	var total int64
	for i := range splits {
		total += splits[i].InputBytes()
	}
	return total
}
